//! Network-layer error taxonomy.
//!
//! Every failure a socket endpoint can observe maps to a distinct variant,
//! mirroring the [`ProtocolError`] discipline of `peace-protocol`: tests
//! and retry loops assert *why* an exchange failed, never just that it did.

use core::fmt;

use peace_protocol::{ProtocolError, Transient};
use peace_wire::WireError;

use crate::envelope::reject_code;

/// Reasons a networked PEACE exchange fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// An OS-level socket error (connect refused, reset, …).
    Io(std::io::ErrorKind),
    /// A read or write missed its per-connection deadline.
    Timeout,
    /// The peer closed the stream (EOF) mid-exchange.
    Closed,
    /// An inbound frame declared a length above the configured bound.
    /// The stream is unrecoverable past this point and must be dropped.
    FrameTooLarge {
        /// The declared payload length.
        declared: u64,
        /// The configured maximum.
        max: u64,
    },
    /// A frame arrived but its envelope failed to decode.
    Malformed(WireError),
    /// Encoding an outbound message overflowed a length prefix.
    Encode(WireError),
    /// The bounded outbound queue is full (receiver not draining).
    Backpressure,
    /// The daemon is at its connection-count limit.
    ConnLimit,
    /// The peer answered with an explicit `Reject` envelope.
    Rejected {
        /// Machine-readable reject code (see [`crate::envelope::reject_code`]).
        code: u16,
        /// Human-readable detail from the peer.
        detail: String,
    },
    /// A local protocol-layer check failed (stale beacon, bad signature…).
    Protocol(ProtocolError),
    /// A ledger-layer failure during replication (verification refusal,
    /// writer quarantine, local I/O). Carries the ledger error's stable
    /// code plus its display text.
    Ledger {
        /// The [`peace_ledger::LedgerError::code`] of the root cause.
        code: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The peer sent a well-formed message of an unexpected kind.
    Unexpected(&'static str),
}

impl NetError {
    /// Stable machine-readable identifier for this failure class (metrics
    /// key / event code; must never change once released).
    ///
    /// [`NetError::Protocol`] delegates to the inner
    /// [`ProtocolError::code`] — the protocol-level reason is the
    /// informative part, and sharing its code space keys the simulator's
    /// and daemon's failure maps identically for the same root cause.
    pub fn code(&self) -> &'static str {
        match self {
            NetError::Io(_) => "io",
            NetError::Timeout => "timeout",
            NetError::Closed => "closed",
            NetError::FrameTooLarge { .. } => "frame_too_large",
            NetError::Malformed(_) => "malformed",
            NetError::Encode(_) => "encode_failed",
            NetError::Backpressure => "backpressure",
            NetError::ConnLimit => "conn_limit",
            NetError::Rejected { .. } => "rejected",
            NetError::Protocol(e) => e.code(),
            NetError::Ledger { code, .. } => code,
            NetError::Unexpected(_) => "unexpected_message",
        }
    }
}

impl Transient for NetError {
    /// Whether a fresh attempt (new connection, new handshake) can
    /// plausibly succeed.
    ///
    /// This is deliberately *looser* than `ProtocolError`'s
    /// [`Transient`] impl: over a hostile wire, even a "fatal"
    /// verification failure (bad group signature, bad beacon signature)
    /// may be corruption the channel injected into our bytes, and a retry
    /// re-signs a fresh exchange from scratch. Only outcomes that a fresh
    /// handshake cannot change are fatal: explicit revocation, a revoked
    /// certificate, a missing credential, or an exhausted retry budget.
    fn is_transient(&self) -> bool {
        match self {
            NetError::Io(_)
            | NetError::Timeout
            | NetError::Closed
            | NetError::FrameTooLarge { .. }
            | NetError::Malformed(_)
            | NetError::Backpressure
            | NetError::ConnLimit
            | NetError::Unexpected(_) => true,
            NetError::Encode(_) => false,
            NetError::Rejected { code, .. } => *code != reject_code::REVOKED,
            // Only a ledger I/O failure is worth a blind retry; refusals
            // and quarantines re-detect deterministically.
            NetError::Ledger { code, .. } => *code == "io",
            NetError::Protocol(e) => !matches!(
                e,
                ProtocolError::SignerRevoked
                    | ProtocolError::CertificateRevoked
                    | ProtocolError::MissingCredential
                    | ProtocolError::RetriesExhausted
            ),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(kind) => write!(f, "socket error: {kind:?}"),
            NetError::Timeout => write!(f, "read/write deadline exceeded"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::FrameTooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds limit {max}")
            }
            NetError::Malformed(e) => write!(f, "malformed envelope: {e}"),
            NetError::Encode(e) => write!(f, "envelope encoding failed: {e}"),
            NetError::Backpressure => write!(f, "outbound queue full"),
            NetError::ConnLimit => write!(f, "connection limit reached"),
            NetError::Rejected { code, detail } => {
                write!(f, "peer rejected (code {code}): {detail}")
            }
            NetError::Protocol(e) => write!(f, "protocol failure: {e}"),
            NetError::Ledger { detail, .. } => write!(f, "ledger failure: {detail}"),
            NetError::Unexpected(what) => write!(f, "unexpected message: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout,
            std::io::ErrorKind::UnexpectedEof => NetError::Closed,
            kind => NetError::Io(kind),
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Malformed(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}

/// Result alias for network operations.
pub type Result<T> = core::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(NetError::Timeout.is_transient());
        assert!(NetError::Closed.is_transient());
        assert!(NetError::Malformed(WireError::UnexpectedEnd).is_transient());
        assert!(NetError::Rejected {
            code: reject_code::AUTH_FAILED,
            detail: String::new()
        }
        .is_transient());
        assert!(!NetError::Rejected {
            code: reject_code::REVOKED,
            detail: String::new()
        }
        .is_transient());
        assert!(!NetError::Protocol(ProtocolError::SignerRevoked).is_transient());
        assert!(NetError::Protocol(ProtocolError::StaleTimestamp).is_transient());
        assert!(!NetError::Encode(WireError::LengthOutOfRange).is_transient());
    }

    #[test]
    fn io_error_mapping() {
        let t = std::io::Error::new(std::io::ErrorKind::TimedOut, "t");
        assert_eq!(NetError::from(t), NetError::Timeout);
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "e");
        assert_eq!(NetError::from(eof), NetError::Closed);
        let refused = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "r");
        assert_eq!(
            NetError::from(refused),
            NetError::Io(std::io::ErrorKind::ConnectionRefused)
        );
    }

    #[test]
    fn display_nonempty() {
        for e in [
            NetError::Timeout,
            NetError::Closed,
            NetError::Backpressure,
            NetError::ConnLimit,
            NetError::FrameTooLarge {
                declared: 9,
                max: 1,
            },
            NetError::Unexpected("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
