//! The typed message envelope carried inside every frame.
//!
//! An envelope is `magic ‖ version ‖ kind ‖ body`, all encoded with the
//! deterministic `peace-wire` codec; the bodies reuse the canonical
//! encodings of the protocol messages themselves (M.1–M.3 travel on the
//! wire byte-identical to how they are hashed and signed). Unknown magic,
//! versions, or kinds are clean decode errors, never panics.

use peace_ledger::{RangeData, WriterDigest};
use peace_protocol::audit::LoggedSession;
use peace_protocol::{
    AccessConfirm, AccessRequest, Beacon, SignedCrl, SignedUrl, SignedUrlDelta, UrlRestamp,
};
use peace_wire::{Decode, Encode, Reader, WireError, Writer};

/// Envelope magic: "PCN" + format revision.
pub const MAGIC: [u8; 4] = *b"PCN1";

/// Envelope version (bumped on incompatible envelope changes).
pub const VERSION: u16 = 1;

/// Machine-readable codes carried by [`NodeMessage::Reject`].
pub mod reject_code {
    /// The daemon is at capacity; try again later.
    pub const BUSY: u16 = 1;
    /// The request failed to decode or was not valid for this role.
    pub const MALFORMED: u16 = 2;
    /// Authentication failed (bad signature, stale timestamp, …).
    pub const AUTH_FAILED: u16 = 3;
    /// The signer's group private key is on the current URL.
    pub const REVOKED: u16 = 4;
    /// No established session exists for data traffic on this connection.
    pub const NO_SESSION: u16 = 5;
    /// An internal daemon error (should not happen; counted).
    pub const INTERNAL: u16 = 6;
}

mod kind {
    pub const GET_BULLETIN: u8 = 1;
    pub const BULLETIN: u8 = 2;
    pub const GET_BEACON: u8 = 3;
    pub const BEACON: u8 = 4;
    pub const ACCESS_REQUEST: u8 = 5;
    pub const ACCESS_CONFIRM: u8 = 6;
    pub const DATA: u8 = 7;
    pub const REJECT: u8 = 8;
    pub const BYE: u8 = 9;
    pub const REPORT_SESSIONS: u8 = 10;
    pub const REPORT_ACK: u8 = 11;
    pub const CKPT_GOSSIP: u8 = 12;
    pub const RANGE_PULL: u8 = 13;
    pub const RANGE_PUSH: u8 = 14;
    pub const GET_URL_DELTA: u8 = 15;
    pub const URL_DELTA: u8 = 16;
}

/// The revocation bulletin served by the NO daemon: epoch number plus the
/// currently signed CRL and URL. Routers poll it to refresh the lists they
/// re-broadcast in beacons; users may poll it directly to tighten their
/// freshness floor between beacons.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bulletin {
    /// The operator's key epoch at publication.
    pub epoch: u64,
    /// Current signed certificate revocation list.
    pub crl: SignedCrl,
    /// Current signed user revocation list.
    pub url: SignedUrl,
}

impl Encode for Bulletin {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        self.crl.encode(w);
        self.url.encode(w);
    }
}

impl Decode for Bulletin {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        Ok(Self {
            epoch: r.get_u64()?,
            crl: SignedCrl::decode(r)?,
            url: SignedUrl::decode(r)?,
        })
    }
}

/// Every message a PEACE node daemon sends or receives.
#[derive(Clone, PartialEq, Debug)]
pub enum NodeMessage {
    /// Poll the NO daemon for the current revocation bulletin.
    GetBulletin,
    /// The NO daemon's bulletin response.
    Bulletin(Bulletin),
    /// Ask a router daemon for a fresh beacon (M.1). On radio this is a
    /// broadcast; over TCP the poll stands in for tuning to the channel.
    GetBeacon,
    /// A router beacon (M.1).
    Beacon(Box<Beacon>),
    /// The anonymous access request (M.2).
    AccessRequest(Box<AccessRequest>),
    /// The access confirmation (M.3).
    AccessConfirm(Box<AccessConfirm>),
    /// AEAD-sealed application data on an established session.
    Data(Vec<u8>),
    /// Explicit rejection with a machine-readable code.
    Reject {
        /// One of [`reject_code`].
        code: u16,
        /// Human-readable detail (not relied on by machines).
        detail: String,
    },
    /// Graceful close: the sender will write nothing further.
    Bye,
    /// A router reporting its logged session transcripts to the NO daemon
    /// for durable ledger persistence (the paper's accountability trail).
    ReportSessions {
        /// The reporting router's display name (`MR_k`).
        router: String,
        /// The transcripts, exactly as the router logged them.
        sessions: Vec<LoggedSession>,
    },
    /// The NO daemon's acknowledgement: how many reported transcripts were
    /// durably appended to the ledger (duplicates are skipped).
    ReportAck {
        /// Number of transcripts newly persisted.
        accepted: u32,
    },
    /// Federation: one NO replica advertising (or answering with) the
    /// signed-checkpoint digests of every ledger shard it holds. Sent
    /// both ways — the opener's digests prompt the responder's, and each
    /// side pulls whatever the other is ahead on.
    CkptGossip {
        /// The advertising replica's NO writer id.
        from_no: String,
        /// Per-shard replication summaries.
        digests: Vec<WriterDigest>,
    },
    /// Federation: ask a peer replica for one writer's entries starting
    /// at `from_seq`, up to that writer's next signed checkpoint.
    RangePull {
        /// The shard writer id to pull.
        writer: String,
        /// First sequence number wanted.
        from_seq: u64,
    },
    /// Federation: the answer to a [`NodeMessage::RangePull`] — a
    /// checkpoint-terminated entry range, or `None` when nothing attested
    /// lies at or past the requested sequence.
    RangePush {
        /// The served range (boxed: ranges dwarf every other body).
        range: Option<Box<RangeData>>,
    },
    /// Ask the NO daemon for a delta-compressed URL diff from the caller's
    /// current `(epoch, have_version)` — O(churn) bytes instead of the
    /// full bulletin.
    GetUrlDelta {
        /// The caller's URL epoch partition.
        epoch: u64,
        /// The caller's current URL version.
        have_version: u64,
    },
    /// The NO daemon's delta response: a signed diff, or `None` when no
    /// delta can chain from the requested point (wrong epoch or behind
    /// the retained diff log) — fall back to a full bulletin fetch.
    UrlDelta {
        /// A freshly-signed CRL, always included: the CRL is O(revoked
        /// routers) — small — and beacons must carry one younger than
        /// `list_max_age`, so delta-only refresh cycles re-ship it whole
        /// while the user-scale URL travels as a diff.
        crl: Box<SignedCrl>,
        /// A detached URL freshness re-stamp (O(1) bytes): the caller
        /// materializes a fresh beacon-carried `SignedUrl` from its
        /// delta-synced token set plus this signature.
        restamp: UrlRestamp,
        /// The signed diff (boxed: carries token lists).
        delta: Option<Box<SignedUrlDelta>>,
    },
}

impl NodeMessage {
    /// Short name of the message kind (metrics/log labels).
    pub fn kind_name(&self) -> &'static str {
        match self {
            NodeMessage::GetBulletin => "get-bulletin",
            NodeMessage::Bulletin(_) => "bulletin",
            NodeMessage::GetBeacon => "get-beacon",
            NodeMessage::Beacon(_) => "beacon",
            NodeMessage::AccessRequest(_) => "access-request",
            NodeMessage::AccessConfirm(_) => "access-confirm",
            NodeMessage::Data(_) => "data",
            NodeMessage::Reject { .. } => "reject",
            NodeMessage::Bye => "bye",
            NodeMessage::ReportSessions { .. } => "report-sessions",
            NodeMessage::ReportAck { .. } => "report-ack",
            NodeMessage::CkptGossip { .. } => "ckpt-gossip",
            NodeMessage::RangePull { .. } => "range-pull",
            NodeMessage::RangePush { .. } => "range-push",
            NodeMessage::GetUrlDelta { .. } => "get-url-delta",
            NodeMessage::UrlDelta { .. } => "url-delta",
        }
    }
}

impl Encode for NodeMessage {
    fn encode(&self, w: &mut Writer) {
        w.put_fixed(&MAGIC);
        w.put_u16(VERSION);
        match self {
            NodeMessage::GetBulletin => w.put_u8(kind::GET_BULLETIN),
            NodeMessage::Bulletin(b) => {
                w.put_u8(kind::BULLETIN);
                b.encode(w);
            }
            NodeMessage::GetBeacon => w.put_u8(kind::GET_BEACON),
            NodeMessage::Beacon(b) => {
                w.put_u8(kind::BEACON);
                b.encode(w);
            }
            NodeMessage::AccessRequest(m) => {
                w.put_u8(kind::ACCESS_REQUEST);
                m.encode(w);
            }
            NodeMessage::AccessConfirm(m) => {
                w.put_u8(kind::ACCESS_CONFIRM);
                m.encode(w);
            }
            NodeMessage::Data(d) => {
                w.put_u8(kind::DATA);
                w.put_bytes(d);
            }
            NodeMessage::Reject { code, detail } => {
                w.put_u8(kind::REJECT);
                w.put_u16(*code);
                w.put_str(detail);
            }
            NodeMessage::Bye => w.put_u8(kind::BYE),
            NodeMessage::ReportSessions { router, sessions } => {
                w.put_u8(kind::REPORT_SESSIONS);
                w.put_str(router);
                w.put_u32(sessions.len() as u32);
                for s in sessions {
                    s.encode(w);
                }
            }
            NodeMessage::ReportAck { accepted } => {
                w.put_u8(kind::REPORT_ACK);
                w.put_u32(*accepted);
            }
            NodeMessage::CkptGossip { from_no, digests } => {
                w.put_u8(kind::CKPT_GOSSIP);
                w.put_str(from_no);
                w.put_seq(digests);
            }
            NodeMessage::RangePull { writer, from_seq } => {
                w.put_u8(kind::RANGE_PULL);
                w.put_str(writer);
                w.put_u64(*from_seq);
            }
            NodeMessage::RangePush { range } => {
                w.put_u8(kind::RANGE_PUSH);
                match range {
                    Some(r) => {
                        w.put_u8(1);
                        r.encode(w);
                    }
                    None => w.put_u8(0),
                }
            }
            NodeMessage::GetUrlDelta {
                epoch,
                have_version,
            } => {
                w.put_u8(kind::GET_URL_DELTA);
                w.put_u64(*epoch);
                w.put_u64(*have_version);
            }
            NodeMessage::UrlDelta {
                crl,
                restamp,
                delta,
            } => {
                w.put_u8(kind::URL_DELTA);
                crl.encode(w);
                restamp.encode(w);
                match delta {
                    Some(d) => {
                        w.put_u8(1);
                        d.encode(w);
                    }
                    None => w.put_u8(0),
                }
            }
        }
    }
}

impl Decode for NodeMessage {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        if r.get_fixed(MAGIC.len())? != MAGIC {
            return Err(WireError::Invalid("envelope.magic"));
        }
        if r.get_u16()? != VERSION {
            return Err(WireError::Invalid("envelope.version"));
        }
        match r.get_u8()? {
            kind::GET_BULLETIN => Ok(NodeMessage::GetBulletin),
            kind::BULLETIN => Ok(NodeMessage::Bulletin(Bulletin::decode(r)?)),
            kind::GET_BEACON => Ok(NodeMessage::GetBeacon),
            kind::BEACON => Ok(NodeMessage::Beacon(Box::new(Beacon::decode(r)?))),
            kind::ACCESS_REQUEST => Ok(NodeMessage::AccessRequest(Box::new(
                AccessRequest::decode(r)?,
            ))),
            kind::ACCESS_CONFIRM => Ok(NodeMessage::AccessConfirm(Box::new(
                AccessConfirm::decode(r)?,
            ))),
            kind::DATA => Ok(NodeMessage::Data(r.get_bytes()?.to_vec())),
            kind::REJECT => Ok(NodeMessage::Reject {
                code: r.get_u16()?,
                detail: r.get_str()?,
            }),
            kind::BYE => Ok(NodeMessage::Bye),
            kind::REPORT_SESSIONS => {
                let router = r.get_str()?;
                let n = r.get_u32()?;
                // Bound preallocation by what the frame could actually hold.
                let mut sessions = Vec::with_capacity((n as usize).min(1024));
                for _ in 0..n {
                    sessions.push(LoggedSession::decode(r)?);
                }
                Ok(NodeMessage::ReportSessions { router, sessions })
            }
            kind::REPORT_ACK => Ok(NodeMessage::ReportAck {
                accepted: r.get_u32()?,
            }),
            kind::CKPT_GOSSIP => Ok(NodeMessage::CkptGossip {
                from_no: r.get_str()?,
                digests: r.get_seq()?,
            }),
            kind::RANGE_PULL => Ok(NodeMessage::RangePull {
                writer: r.get_str()?,
                from_seq: r.get_u64()?,
            }),
            kind::RANGE_PUSH => {
                let range = match r.get_u8()? {
                    0 => None,
                    1 => Some(Box::new(RangeData::decode(r)?)),
                    _ => return Err(WireError::Invalid("envelope.range flag")),
                };
                Ok(NodeMessage::RangePush { range })
            }
            kind::GET_URL_DELTA => Ok(NodeMessage::GetUrlDelta {
                epoch: r.get_u64()?,
                have_version: r.get_u64()?,
            }),
            kind::URL_DELTA => {
                let crl = Box::new(SignedCrl::decode(r)?);
                let restamp = UrlRestamp::decode(r)?;
                let delta = match r.get_u8()? {
                    0 => None,
                    1 => Some(Box::new(SignedUrlDelta::decode(r)?)),
                    _ => return Err(WireError::Invalid("envelope.delta flag")),
                };
                Ok(NodeMessage::UrlDelta {
                    crl,
                    restamp,
                    delta,
                })
            }
            _ => Err(WireError::Invalid("envelope.kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &NodeMessage) {
        let bytes = msg.to_wire();
        let back = NodeMessage::from_wire(&bytes).unwrap();
        assert_eq!(&back, msg);
    }

    #[test]
    fn plain_kinds_roundtrip() {
        roundtrip(&NodeMessage::GetBulletin);
        roundtrip(&NodeMessage::GetBeacon);
        roundtrip(&NodeMessage::Bye);
        roundtrip(&NodeMessage::Data(b"sealed bytes".to_vec()));
        roundtrip(&NodeMessage::Data(Vec::new()));
        roundtrip(&NodeMessage::Reject {
            code: reject_code::REVOKED,
            detail: "signer on URL".into(),
        });
        roundtrip(&NodeMessage::ReportSessions {
            router: "MR-1".into(),
            sessions: Vec::new(),
        });
        roundtrip(&NodeMessage::ReportAck { accepted: 17 });
    }

    #[test]
    fn federation_kinds_roundtrip() {
        roundtrip(&NodeMessage::CkptGossip {
            from_no: "NO-1".into(),
            digests: vec![WriterDigest {
                writer: "NO-0".into(),
                next_seq: 9,
                chain: [4u8; 32],
                ckpt_seq: Some(8),
                quarantined: false,
            }],
        });
        roundtrip(&NodeMessage::CkptGossip {
            from_no: "NO-2".into(),
            digests: Vec::new(),
        });
        roundtrip(&NodeMessage::RangePull {
            writer: "NO-0".into(),
            from_seq: 3,
        });
        roundtrip(&NodeMessage::RangePush { range: None });
        // A populated push needs a real signed checkpoint.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let key = peace_ecdsa::SigningKey::random(&mut StdRng::seed_from_u64(5));
        let ck = peace_ledger::Checkpoint::sign(&key, "NO-0", 2, [7u8; 32], 99);
        roundtrip(&NodeMessage::RangePush {
            range: Some(Box::new(RangeData {
                writer: "NO-0".into(),
                from_seq: 0,
                payloads: vec![vec![1, 2], vec![3]],
                ck,
            })),
        });
    }

    #[test]
    fn url_delta_kinds_roundtrip() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        roundtrip(&NodeMessage::GetUrlDelta {
            epoch: 2,
            have_version: 41,
        });
        let mut rng = StdRng::seed_from_u64(6);
        let key = peace_ecdsa::SigningKey::random(&mut rng);
        let crl = SignedCrl::issue(&key, 3, 1_200, vec![9, 11]);
        let tok = peace_groupsig::RevocationToken(peace_curve::G1::random(&mut rng));
        let restamp = UrlRestamp::issue(&key, 43, 1_200, std::slice::from_ref(&tok));
        roundtrip(&NodeMessage::UrlDelta {
            crl: Box::new(crl.clone()),
            restamp: restamp.clone(),
            delta: None,
        });
        let signed = SignedUrlDelta::issue(
            &key,
            peace_revoke::UrlDelta {
                epoch: 2,
                from_version: 41,
                to_version: 43,
                added: vec![tok],
                removed: vec![],
            },
            1_234,
        );
        roundtrip(&NodeMessage::UrlDelta {
            crl: Box::new(crl),
            restamp,
            delta: Some(Box::new(signed)),
        });
    }

    #[test]
    fn bad_magic_version_kind_rejected() {
        let mut bytes = NodeMessage::GetBeacon.to_wire();
        bytes[0] ^= 0xFF;
        assert_eq!(
            NodeMessage::from_wire(&bytes),
            Err(WireError::Invalid("envelope.magic"))
        );

        let mut bytes = NodeMessage::GetBeacon.to_wire();
        bytes[5] ^= 0xFF; // version low byte
        assert_eq!(
            NodeMessage::from_wire(&bytes),
            Err(WireError::Invalid("envelope.version"))
        );

        let mut bytes = NodeMessage::GetBeacon.to_wire();
        bytes[6] = 0xEE; // unknown kind
        assert_eq!(
            NodeMessage::from_wire(&bytes),
            Err(WireError::Invalid("envelope.kind"))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = NodeMessage::Bye.to_wire();
        bytes.push(0);
        assert_eq!(
            NodeMessage::from_wire(&bytes),
            Err(WireError::TrailingBytes)
        );
    }

    #[test]
    fn kind_names_distinct() {
        let msgs = [
            NodeMessage::GetBulletin,
            NodeMessage::GetBeacon,
            NodeMessage::Data(vec![]),
            NodeMessage::Reject {
                code: 0,
                detail: String::new(),
            },
            NodeMessage::Bye,
            NodeMessage::ReportSessions {
                router: String::new(),
                sessions: Vec::new(),
            },
            NodeMessage::ReportAck { accepted: 0 },
            NodeMessage::CkptGossip {
                from_no: String::new(),
                digests: Vec::new(),
            },
            NodeMessage::RangePull {
                writer: String::new(),
                from_seq: 0,
            },
            NodeMessage::RangePush { range: None },
            NodeMessage::GetUrlDelta {
                epoch: 0,
                have_version: 0,
            },
            {
                let key = peace_ecdsa::SigningKey::random(
                    &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7),
                );
                NodeMessage::UrlDelta {
                    crl: Box::new(SignedCrl::issue(&key, 0, 0, vec![])),
                    restamp: UrlRestamp::issue(&key, 0, 0, &[]),
                    delta: None,
                }
            },
        ];
        let names: std::collections::HashSet<_> = msgs.iter().map(|m| m.kind_name()).collect();
        assert_eq!(names.len(), msgs.len());
    }
}
