//! Net-layer observability: per-daemon counters, handshake-leg latency
//! histograms, and per-connection statistics.
//!
//! Each daemon owns one [`NetMetrics`], which is a view over a private
//! `peace-telemetry` [`Registry`] (private so several daemons in one
//! process — the loopback tests, `peace-noded demo` — never collide).
//! The hot path holds pre-resolved `Arc` handles: an increment is one
//! relaxed atomic add, exactly as cheap as the bare `AtomicU64` fields
//! this module used to carry. [`NetMetrics::telemetry`] exports the whole
//! registry as a schema-versioned [`Snapshot`] for `--metrics-json`.

use std::sync::Arc;

use peace_telemetry::{Counter, Histogram, Registry, Snapshot, Timer};

use crate::clock::wall_ms;

/// Shared per-daemon counters and latency histograms. One instance is
/// owned by each daemon and cloned (via `Arc`) into every connection
/// handler; all increments are relaxed atomics — the counters are
/// monotone and read only in snapshots.
#[derive(Debug)]
pub struct NetMetrics {
    registry: Registry,
    /// Frames successfully read.
    pub frames_in: Arc<Counter>,
    /// Frames successfully written.
    pub frames_out: Arc<Counter>,
    /// Payload bytes read (excluding frame headers).
    pub bytes_in: Arc<Counter>,
    /// Payload bytes written (excluding frame headers).
    pub bytes_out: Arc<Counter>,
    /// Handshakes completed (M.3 issued / session established).
    pub handshakes_ok: Arc<Counter>,
    /// Handshakes rejected or failed.
    pub handshakes_fail: Arc<Counter>,
    /// Read/write deadline misses.
    pub timeouts: Arc<Counter>,
    /// Inbound frames rejected for exceeding the size bound.
    pub oversize_rejected: Arc<Counter>,
    /// Frames that failed envelope decoding.
    pub decode_failures: Arc<Counter>,
    /// Connections accepted.
    pub connections_accepted: Arc<Counter>,
    /// Connections turned away at the connection-count limit.
    pub connections_rejected: Arc<Counter>,
    /// Client side: dials this endpoint made that the *peer* turned away
    /// at its connection cap (an explicit BUSY reject, or an accept-queue
    /// overflow surfacing as a refused/reset dial). Always a transient
    /// outcome — open-loop load workers back off and retry instead of
    /// counting a hard failure.
    pub conn_rejected: Arc<Counter>,
    /// Sends refused because the bounded outbound queue was full.
    pub backpressure_events: Arc<Counter>,
    /// Handler threads that panicked (must stay 0; asserted by tests).
    pub handler_panics: Arc<Counter>,
    /// Ledger appends/flushes that failed (durability degraded, not fatal).
    pub ledger_errors: Arc<Counter>,
    /// Session transcripts durably appended to the ledger.
    pub ledger_sessions: Arc<Counter>,
    /// Completed checkpoint-gossip sync rounds with a peer replica.
    pub repl_rounds: Arc<Counter>,
    /// Replication ranges served to pulling peers.
    pub repl_ranges_out: Arc<Counter>,
    /// Records ingested into mirror shards from peer replicas.
    pub repl_records_in: Arc<Counter>,
    /// Transcript reports that succeeded only on a non-primary NO replica.
    pub failovers: Arc<Counter>,
    /// Pending transcripts dropped (oldest-first) at the outbox cap after
    /// every configured NO replica refused a report.
    pub transcripts_dropped: Arc<Counter>,
    /// Signed URL deltas served (NO side) or applied (router side).
    pub url_deltas_out: Arc<Counter>,
    /// Router delta refreshes that had to fall back to a full bulletin
    /// fetch (stale epoch, behind the diff log, or a chain refusal).
    pub url_delta_fallbacks: Arc<Counter>,
    /// User side: GetBeacon → Beacon leg of the handshake (µs).
    pub hs_beacon_us: Arc<Histogram>,
    /// User side: AccessRequest → AccessConfirm leg (µs).
    pub hs_confirm_us: Arc<Histogram>,
    /// User side: whole handshake, connect to session key (µs).
    pub hs_total_us: Arc<Histogram>,
    /// Router side: access-request verification (group signature, URL
    /// sweep, puzzle) (µs).
    pub access_verify_us: Arc<Histogram>,
    /// Application echo round-trip over an established session (µs).
    pub frame_rtt_us: Arc<Histogram>,
}

impl NetMetrics {
    /// Creates a fresh metrics view over its own private registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        let c = |name: &str| registry.counter(name);
        let h = |name: &str| registry.histogram(name);
        Self {
            frames_in: c("net.frames_in"),
            frames_out: c("net.frames_out"),
            bytes_in: c("net.bytes_in"),
            bytes_out: c("net.bytes_out"),
            handshakes_ok: c("net.handshakes_ok"),
            handshakes_fail: c("net.handshakes_fail"),
            timeouts: c("net.timeouts"),
            oversize_rejected: c("net.oversize_rejected"),
            decode_failures: c("net.decode_failures"),
            connections_accepted: c("net.connections_accepted"),
            connections_rejected: c("net.connections_rejected"),
            conn_rejected: c("net.conn_rejected"),
            backpressure_events: c("net.backpressure_events"),
            handler_panics: c("net.handler_panics"),
            ledger_errors: c("net.ledger_errors"),
            ledger_sessions: c("net.ledger_sessions"),
            repl_rounds: c("net.repl_rounds"),
            repl_ranges_out: c("net.repl_ranges_out"),
            repl_records_in: c("net.repl_records_in"),
            failovers: c("net.failovers"),
            transcripts_dropped: c("net.transcripts_dropped"),
            url_deltas_out: c("net.url_deltas_out"),
            url_delta_fallbacks: c("net.url_delta_fallbacks"),
            hs_beacon_us: h("net.hs_beacon_us"),
            hs_confirm_us: h("net.hs_confirm_us"),
            hs_total_us: h("net.hs_total_us"),
            access_verify_us: h("net.access_verify_us"),
            frame_rtt_us: h("net.frame_rtt_us"),
            registry,
        }
    }

    /// Starts a RAII timer that records into `hist` (one of this
    /// view's histograms) when dropped.
    pub fn start_timer(&self, hist: &Arc<Histogram>) -> Timer {
        Registry::start_timer(hist)
    }

    /// Records a structured event (wall-clock stamped) into the bounded
    /// ring, e.g. `handshake_fail` with the error's stable code.
    pub fn event(&self, code: &str, detail: &str) {
        self.registry.event(code, detail, wall_ms());
    }

    /// Takes a consistent-enough snapshot (counters are independent).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            handshakes_ok: self.handshakes_ok.get(),
            handshakes_fail: self.handshakes_fail.get(),
            timeouts: self.timeouts.get(),
            oversize_rejected: self.oversize_rejected.get(),
            decode_failures: self.decode_failures.get(),
            connections_accepted: self.connections_accepted.get(),
            connections_rejected: self.connections_rejected.get(),
            conn_rejected: self.conn_rejected.get(),
            backpressure_events: self.backpressure_events.get(),
            handler_panics: self.handler_panics.get(),
            ledger_errors: self.ledger_errors.get(),
            ledger_sessions: self.ledger_sessions.get(),
            repl_rounds: self.repl_rounds.get(),
            repl_ranges_out: self.repl_ranges_out.get(),
            repl_records_in: self.repl_records_in.get(),
            failovers: self.failovers.get(),
            transcripts_dropped: self.transcripts_dropped.get(),
            url_deltas_out: self.url_deltas_out.get(),
            url_delta_fallbacks: self.url_delta_fallbacks.get(),
        }
    }

    /// Exports everything this daemon recorded — counters, histograms,
    /// events — as one schema-versioned telemetry snapshot.
    pub fn telemetry(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Default for NetMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of the [`NetMetrics`] counters (histograms and
/// events live in [`NetMetrics::telemetry`] snapshots).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Frames successfully read.
    pub frames_in: u64,
    /// Frames successfully written.
    pub frames_out: u64,
    /// Payload bytes read.
    pub bytes_in: u64,
    /// Payload bytes written.
    pub bytes_out: u64,
    /// Handshakes completed.
    pub handshakes_ok: u64,
    /// Handshakes rejected or failed.
    pub handshakes_fail: u64,
    /// Deadline misses.
    pub timeouts: u64,
    /// Oversize frames rejected.
    pub oversize_rejected: u64,
    /// Envelope decode failures.
    pub decode_failures: u64,
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections rejected at the limit.
    pub connections_rejected: u64,
    /// Client side: dials the peer turned away at its connection cap.
    pub conn_rejected: u64,
    /// Backpressure refusals.
    pub backpressure_events: u64,
    /// Handler panics (must be 0).
    pub handler_panics: u64,
    /// Failed ledger appends/flushes.
    pub ledger_errors: u64,
    /// Session transcripts durably appended.
    pub ledger_sessions: u64,
    /// Completed gossip sync rounds.
    pub repl_rounds: u64,
    /// Replication ranges served to peers.
    pub repl_ranges_out: u64,
    /// Records ingested from peer replicas.
    pub repl_records_in: u64,
    /// Reports that failed over to a non-primary replica.
    pub failovers: u64,
    /// Transcripts dropped at the bounded outbox cap.
    pub transcripts_dropped: u64,
    /// Signed URL deltas served/applied.
    pub url_deltas_out: u64,
    /// Delta refreshes that fell back to a full bulletin fetch.
    pub url_delta_fallbacks: u64,
}

impl MetricsSnapshot {
    /// Sums `other` into `self`, field by field. The sharded event-loop
    /// runtime keeps one [`NetMetrics`] per I/O shard (plus one for the
    /// verify pool and one for daemon-initiated outbound dials) and
    /// presents their sum as the daemon's counter view.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.handshakes_ok += other.handshakes_ok;
        self.handshakes_fail += other.handshakes_fail;
        self.timeouts += other.timeouts;
        self.oversize_rejected += other.oversize_rejected;
        self.decode_failures += other.decode_failures;
        self.connections_accepted += other.connections_accepted;
        self.connections_rejected += other.connections_rejected;
        self.conn_rejected += other.conn_rejected;
        self.backpressure_events += other.backpressure_events;
        self.handler_panics += other.handler_panics;
        self.ledger_errors += other.ledger_errors;
        self.ledger_sessions += other.ledger_sessions;
        self.repl_rounds += other.repl_rounds;
        self.repl_ranges_out += other.repl_ranges_out;
        self.repl_records_in += other.repl_records_in;
        self.failovers += other.failovers;
        self.transcripts_dropped += other.transcripts_dropped;
        self.url_deltas_out += other.url_deltas_out;
        self.url_delta_fallbacks += other.url_delta_fallbacks;
    }
}

/// Per-connection statistics, kept as plain integers on the connection
/// (single-threaded by construction) and snapshotted on demand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames read on this connection.
    pub frames_in: u64,
    /// Frames written on this connection.
    pub frames_out: u64,
    /// Payload bytes read.
    pub bytes_in: u64,
    /// Payload bytes written.
    pub bytes_out: u64,
    /// Deadline misses observed.
    pub timeouts: u64,
    /// Envelope decode failures observed.
    pub decode_failures: u64,
}

impl ConnStats {
    /// Serializes the per-connection counters as JSON.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"frames_in\":{},\"frames_out\":{},\"bytes_in\":{},",
                "\"bytes_out\":{},\"timeouts\":{},\"decode_failures\":{}}}"
            ),
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.timeouts,
            self.decode_failures,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let m = NetMetrics::default();
        m.frames_in.inc();
        m.bytes_in.add(100);
        m.handshakes_ok.inc();
        let s = m.snapshot();
        assert_eq!(s.frames_in, 1);
        assert_eq!(s.bytes_in, 100);
        assert_eq!(s.handshakes_ok, 1);
        assert_eq!(s.handler_panics, 0);
    }

    #[test]
    fn telemetry_snapshot_carries_histograms_and_events() {
        let m = NetMetrics::new();
        m.handshakes_fail.inc();
        m.hs_total_us.record(1500);
        m.event("handshake_fail", "signer_revoked");
        let snap = m.telemetry();
        assert_eq!(snap.counters["net.handshakes_fail"], 1);
        assert_eq!(snap.histograms["net.hs_total_us"].count, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].code, "handshake_fail");
        let json = snap.to_json();
        assert!(json.contains("\"net.hs_total_us\""));
        assert!(json.contains("\"schema\":\"peace-telemetry-v1\""));
    }

    #[test]
    fn instances_are_independent() {
        let a = NetMetrics::new();
        let b = NetMetrics::new();
        a.frames_in.inc();
        assert_eq!(a.snapshot().frames_in, 1);
        assert_eq!(b.snapshot().frames_in, 0);

        let c = ConnStats::default().to_json();
        assert!(c.contains("\"frames_in\":0"));
    }
}
