//! Net-layer observability: lock-free per-daemon counters and per-connection
//! statistics, both exportable as JSON snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared per-daemon counters. One instance is owned by each daemon and
/// cloned (via `Arc`) into every connection handler; all increments are
/// relaxed atomics — the counters are monotone and read only in snapshots.
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Frames successfully read.
    pub frames_in: AtomicU64,
    /// Frames successfully written.
    pub frames_out: AtomicU64,
    /// Payload bytes read (excluding frame headers).
    pub bytes_in: AtomicU64,
    /// Payload bytes written (excluding frame headers).
    pub bytes_out: AtomicU64,
    /// Handshakes completed (M.3 issued / session established).
    pub handshakes_ok: AtomicU64,
    /// Handshakes rejected or failed.
    pub handshakes_fail: AtomicU64,
    /// Read/write deadline misses.
    pub timeouts: AtomicU64,
    /// Inbound frames rejected for exceeding the size bound.
    pub oversize_rejected: AtomicU64,
    /// Frames that failed envelope decoding.
    pub decode_failures: AtomicU64,
    /// Connections accepted.
    pub connections_accepted: AtomicU64,
    /// Connections turned away at the connection-count limit.
    pub connections_rejected: AtomicU64,
    /// Sends refused because the bounded outbound queue was full.
    pub backpressure_events: AtomicU64,
    /// Handler threads that panicked (must stay 0; asserted by tests).
    pub handler_panics: AtomicU64,
    /// Ledger appends/flushes that failed (durability degraded, not fatal).
    pub ledger_errors: AtomicU64,
    /// Session transcripts durably appended to the ledger.
    pub ledger_sessions: AtomicU64,
}

/// A point-in-time copy of [`NetMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Frames successfully read.
    pub frames_in: u64,
    /// Frames successfully written.
    pub frames_out: u64,
    /// Payload bytes read.
    pub bytes_in: u64,
    /// Payload bytes written.
    pub bytes_out: u64,
    /// Handshakes completed.
    pub handshakes_ok: u64,
    /// Handshakes rejected or failed.
    pub handshakes_fail: u64,
    /// Deadline misses.
    pub timeouts: u64,
    /// Oversize frames rejected.
    pub oversize_rejected: u64,
    /// Envelope decode failures.
    pub decode_failures: u64,
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections rejected at the limit.
    pub connections_rejected: u64,
    /// Backpressure refusals.
    pub backpressure_events: u64,
    /// Handler panics (must be 0).
    pub handler_panics: u64,
    /// Failed ledger appends/flushes.
    pub ledger_errors: u64,
    /// Session transcripts durably appended.
    pub ledger_sessions: u64,
}

impl NetMetrics {
    /// Relaxed increment helper.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add helper.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot (counters are independent).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            frames_in: ld(&self.frames_in),
            frames_out: ld(&self.frames_out),
            bytes_in: ld(&self.bytes_in),
            bytes_out: ld(&self.bytes_out),
            handshakes_ok: ld(&self.handshakes_ok),
            handshakes_fail: ld(&self.handshakes_fail),
            timeouts: ld(&self.timeouts),
            oversize_rejected: ld(&self.oversize_rejected),
            decode_failures: ld(&self.decode_failures),
            connections_accepted: ld(&self.connections_accepted),
            connections_rejected: ld(&self.connections_rejected),
            backpressure_events: ld(&self.backpressure_events),
            handler_panics: ld(&self.handler_panics),
            ledger_errors: ld(&self.ledger_errors),
            ledger_sessions: ld(&self.ledger_sessions),
        }
    }
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a single JSON object (no external
    /// dependencies; keys are stable for dashboards and `BENCH_net.json`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"frames_in\":{},\"frames_out\":{},\"bytes_in\":{},\"bytes_out\":{},",
                "\"handshakes_ok\":{},\"handshakes_fail\":{},\"timeouts\":{},",
                "\"oversize_rejected\":{},\"decode_failures\":{},",
                "\"connections_accepted\":{},\"connections_rejected\":{},",
                "\"backpressure_events\":{},\"handler_panics\":{},",
                "\"ledger_errors\":{},\"ledger_sessions\":{}}}"
            ),
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.handshakes_ok,
            self.handshakes_fail,
            self.timeouts,
            self.oversize_rejected,
            self.decode_failures,
            self.connections_accepted,
            self.connections_rejected,
            self.backpressure_events,
            self.handler_panics,
            self.ledger_errors,
            self.ledger_sessions,
        )
    }
}

/// Per-connection statistics, kept as plain integers on the connection
/// (single-threaded by construction) and snapshotted on demand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames read on this connection.
    pub frames_in: u64,
    /// Frames written on this connection.
    pub frames_out: u64,
    /// Payload bytes read.
    pub bytes_in: u64,
    /// Payload bytes written.
    pub bytes_out: u64,
    /// Deadline misses observed.
    pub timeouts: u64,
    /// Envelope decode failures observed.
    pub decode_failures: u64,
}

impl ConnStats {
    /// Serializes the per-connection counters as JSON.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"frames_in\":{},\"frames_out\":{},\"bytes_in\":{},",
                "\"bytes_out\":{},\"timeouts\":{},\"decode_failures\":{}}}"
            ),
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.timeouts,
            self.decode_failures,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let m = NetMetrics::default();
        NetMetrics::inc(&m.frames_in);
        NetMetrics::add(&m.bytes_in, 100);
        NetMetrics::inc(&m.handshakes_ok);
        let s = m.snapshot();
        assert_eq!(s.frames_in, 1);
        assert_eq!(s.bytes_in, 100);
        assert_eq!(s.handshakes_ok, 1);
        assert_eq!(s.handler_panics, 0);
    }

    #[test]
    fn json_is_well_formed() {
        let s = NetMetrics::default().snapshot();
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"handshakes_ok\":0"));
        assert!(j.contains("\"handler_panics\":0"));
        assert_eq!(j.matches('{').count(), 1);

        let c = ConnStats::default().to_json();
        assert!(c.contains("\"frames_in\":0"));
    }
}
