//! The sharded, readiness-based event-loop runtime.
//!
//! `std::net` offers no portable poll(2) wrapper and the dependency set
//! is frozen, so readiness is implemented as the documented portable
//! equivalent: every socket is `set_nonblocking(true)` and each shard
//! keeps a two-tier readiness queue over the connections it owns —
//!
//! * **active** connections (mid-handshake, echoing, flushing) are swept
//!   every iteration; a sweep that moves bytes keeps the shard spinning,
//!   and [`SPIN_SCANS`] empty sweeps later it falls back to millisecond
//!   ticks;
//! * **parked** connections (established sessions gone quiet for
//!   [`PARK_AFTER`]) are swept every [`SLOW_EVERY`], which is what makes
//!   10 000 held sessions cheap: the steady-state syscall load is
//!   `conns / SLOW_EVERY` reads, not `conns / tick`.
//!
//! Layout: the accept thread assigns each connection to one of `N`
//! shard threads by connection id. A shard owns its connections
//! outright — socket, [`FrameDecoder`], outbound queue, and the
//! per-connection [`SessionSm`] — so no connection state is ever shared
//! between threads and the hot path touches only shard-local metrics.
//! Crypto-heavy access verification is handed to a crossbeam-channel
//! worker pool ([`Step::Offload`] → [`VerifyTask`]); the shard parks
//! the connection's inbound frames until the pool posts
//! [`ShardMsg::Verified`] back to the owning shard's channel, so a slow
//! pairing never stalls an I/O shard. The pool drains bursts into
//! batches (one [`MeshRouter::process_access_requests`] call under one
//! router-lock hold), keeping the two-final-exponentiations-per-burst
//! batching the blocking runtime already had.
//!
//! Backpressure is explicit at both ends: a full verify queue yields a
//! transient `BUSY` reject (the client retries; counted as
//! `net.backpressure_events`), and an outbound queue past the
//! configured byte/frame bounds closes the connection (a peer that
//! will not read its replies). Connections over the daemon cap are
//! serviced *by the event loop itself* as [`Role::RejectBusy`]: read
//! one frame (or wait out [`BUSY_DEADLINE`]), write the pre-framed
//! `BUSY` reject, close — no thread is ever spawned per rejection.
//!
//! [`MeshRouter::process_access_requests`]: peace_protocol::entities::MeshRouter::process_access_requests

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use peace_protocol::AccessRequest;
use peace_telemetry::Snapshot;
use peace_wire::{Decode as _, Encode as _};

use crate::clock::wall_ms;
use crate::daemon::{lock_recover, DaemonConfig};
use crate::envelope::{reject_code, NodeMessage};
use crate::error::{NetError, Result};
use crate::frame::{FrameDecoder, FRAME_HEADER_LEN};
use crate::metrics::{MetricsSnapshot, NetMetrics};
use crate::server::busy_frame;
use crate::session::{RouterShared, Service, SessionSm, Step, VerifyOutcome};

/// Read chunk size per `read(2)`; also the per-sweep budget unit.
const READ_CHUNK: usize = 16 * 1024;
/// Maximum successive reads per connection per sweep, so one firehose
/// peer cannot monopolize its shard's iteration.
const MAX_READS_PER_SCAN: usize = 8;
/// Consecutive empty sweeps before a shard stops spinning and starts
/// sleeping in 1 ms ticks. An empty sweep costs O(active) reads (parked
/// connections are not scanned), so ~1024 sweeps of a quiet shard is a
/// few milliseconds of coverage and an echo peer's next request almost
/// always lands mid-spin, round-tripping without any tick latency.
const SPIN_SCANS: u32 = 1024;
/// Tick length once a shard has gone to sleep with active connections.
const FAST_TICK: Duration = Duration::from_millis(1);
/// Sweep period for parked connections (and idle-timeout eviction).
const SLOW_EVERY: Duration = Duration::from_millis(100);
/// Quiet time after which an established, fully-flushed connection is
/// parked onto the slow sweep.
const PARK_AFTER: Duration = Duration::from_millis(10);
/// How long an over-cap connection is held for its first frame before
/// the `BUSY` reject is written regardless.
const BUSY_DEADLINE: Duration = Duration::from_millis(200);
/// Verify-pool queue bound; `try_send` past this yields a transient
/// `BUSY` reject instead of unbounded queueing.
const VERIFY_QUEUE_CAP: usize = 4096;
/// Largest burst verified as one batch under one router-lock hold.
const VERIFY_BATCH_MAX: usize = 64;

/// Work posted to a shard's channel.
enum ShardMsg {
    /// A freshly accepted connection this shard now owns.
    Serve(TcpStream, u64),
    /// An over-cap connection to turn away with `BUSY`.
    RejectBusy(TcpStream, u64),
    /// A deferred verification outcome for connection `token`.
    Verified {
        token: u64,
        outcome: Box<VerifyOutcome>,
    },
    /// No-op used to pop the shard out of `recv_timeout` at shutdown.
    Wake,
}

/// One queued access verification.
struct VerifyTask {
    shard: usize,
    token: u64,
    req: Box<AccessRequest>,
}

/// What a connection is for.
enum Role {
    /// A served protocol connection with its state machine.
    Serve(SessionSm),
    /// An over-cap connection awaiting its one-frame-or-deadline busy
    /// reject. `queued` flips once the reject frame is on the queue.
    RejectBusy { deadline: Instant, queued: bool },
}

/// Shard-owned per-connection state.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded frames (header + payload) not yet fully written.
    out: std::collections::VecDeque<Vec<u8>>,
    /// Bytes of `out.front()` already written.
    out_head: usize,
    /// Total payload-plus-header bytes queued in `out`.
    out_bytes: usize,
    role: Role,
    last_activity: Instant,
    parked: bool,
    close_after_flush: bool,
}

impl Conn {
    /// Encodes and queues one reply frame. `false` means the connection
    /// must close (encode failure or a peer not draining its replies).
    fn enqueue(&mut self, msg: &NodeMessage, cfg: &DaemonConfig, metrics: &NetMetrics) -> bool {
        let payload = match msg.try_to_wire() {
            Ok(p) => p,
            Err(_) => return false,
        };
        if payload.len() > cfg.conn.max_frame {
            return false;
        }
        if self.out.len() >= cfg.conn.max_queue_frames
            || self.out_bytes + payload.len() > cfg.conn.max_queue_bytes
        {
            metrics.backpressure_events.inc();
            return false;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&payload);
        self.out_bytes += frame.len();
        self.out.push_back(frame);
        metrics.frames_out.inc();
        metrics.bytes_out.add(payload.len() as u64);
        true
    }

    /// Queues an already-framed byte sequence (the busy reject).
    fn enqueue_raw(&mut self, frame: &[u8]) {
        self.out_bytes += frame.len();
        self.out.push_back(frame.to_vec());
    }

    /// Writes queued frames until the socket would block. `false` means
    /// the connection died mid-write.
    fn flush(&mut self, activity: &mut bool) -> bool {
        while let Some(front) = self.out.front() {
            match self.stream.write(&front[self.out_head..]) {
                Ok(0) => return false,
                Ok(n) => {
                    *activity = true;
                    self.out_head += n;
                    if self.out_head == front.len() {
                        self.out_bytes -= front.len();
                        self.out_head = 0;
                        self.out.pop_front();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }

    fn awaiting_verify(&self) -> bool {
        match &self.role {
            Role::Serve(sm) => sm.awaiting_verify(),
            Role::RejectBusy { .. } => false,
        }
    }
}

/// Everything one shard thread needs.
struct ShardState {
    idx: usize,
    cfg: DaemonConfig,
    service: Service,
    verify_tx: Option<Sender<VerifyTask>>,
    metrics: Arc<NetMetrics>,
    live: Arc<AtomicUsize>,
    conns: HashMap<u64, Conn>,
    /// Ids of non-parked connections: the fast sweep's worklist, so a
    /// spin iteration is O(active) no matter how many thousands of
    /// parked sessions the shard holds. Lazily cleaned — dropped or
    /// newly-parked ids fall out on the next fast pass.
    active: Vec<u64>,
}

/// `true` to keep the connection, `false` to drop it.
type Keep = bool;

impl ShardState {
    fn run(mut self, rx: Receiver<ShardMsg>, quit: Arc<AtomicBool>) {
        let mut scratch: Vec<u64> = Vec::new();
        let mut buf = vec![0u8; READ_CHUNK];
        let mut last_slow = Instant::now();
        let mut idle_scans: u32 = SPIN_SCANS;

        loop {
            if quit.load(Ordering::SeqCst) {
                self.drop_all();
                return;
            }

            // 1. Drain the channel, sleeping only when nothing is hot.
            let timeout = if idle_scans < SPIN_SCANS && !self.active.is_empty() {
                Duration::ZERO
            } else if !self.active.is_empty() {
                FAST_TICK
            } else {
                (last_slow + SLOW_EVERY)
                    .saturating_duration_since(Instant::now())
                    .max(FAST_TICK)
            };
            let mut got_msg = false;
            let first = if timeout.is_zero() {
                rx.try_recv().ok()
            } else {
                match rx.recv_timeout(timeout) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        self.drop_all();
                        return;
                    }
                }
            };
            if let Some(m) = first {
                got_msg = true;
                self.on_msg(m, &mut buf);
                while let Ok(m) = rx.try_recv() {
                    self.on_msg(m, &mut buf);
                }
            }

            // 2. Sweep: active connections every pass, parked ones on
            // the slow cadence.
            let now = Instant::now();
            let slow = now.saturating_duration_since(last_slow) >= SLOW_EVERY;
            if slow {
                last_slow = now;
            }
            let mut activity = got_msg;
            if slow {
                // Slow pass: service every parked connection (this is
                // also where idle-timeout eviction catches them) and
                // promote any that woke back onto the fast worklist.
                scratch.clear();
                scratch.extend(self.conns.iter().filter(|(_, c)| c.parked).map(|(k, _)| *k));
                for id in &scratch {
                    let keep = self.service_conn(*id, &mut buf, &mut activity);
                    if !keep {
                        self.drop_conn(*id);
                    } else if self.conns.get(id).is_some_and(|c| !c.parked) {
                        self.active.push(*id);
                    }
                }
            }
            // Fast pass: the active worklist only — O(active) even while
            // spinning, with dead and newly-parked ids swept out.
            let mut i = 0;
            while i < self.active.len() {
                let id = self.active[i];
                let keep = self.service_conn(id, &mut buf, &mut activity);
                if !keep {
                    self.drop_conn(id);
                } else {
                    self.maybe_park(id);
                }
                if self.conns.get(&id).is_some_and(|c| !c.parked) {
                    i += 1;
                } else {
                    self.active.swap_remove(i);
                }
            }

            idle_scans = if activity {
                0
            } else {
                idle_scans.saturating_add(1)
            };
        }
    }

    fn on_msg(&mut self, msg: ShardMsg, buf: &mut [u8]) {
        match msg {
            ShardMsg::Serve(stream, id) => {
                if stream.set_nonblocking(true).is_err() {
                    self.live.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                let _ = stream.set_nodelay(true);
                self.conns.insert(
                    id,
                    Conn {
                        stream,
                        decoder: FrameDecoder::new(self.cfg.conn.max_frame),
                        out: std::collections::VecDeque::new(),
                        out_head: 0,
                        out_bytes: 0,
                        role: Role::Serve(self.service.new_session()),
                        last_activity: Instant::now(),
                        parked: false,
                        close_after_flush: false,
                    },
                );
                self.active.push(id);
            }
            ShardMsg::RejectBusy(stream, id) => {
                if stream.set_nonblocking(true).is_err() {
                    return;
                }
                let _ = stream.set_nodelay(true);
                self.conns.insert(
                    id,
                    Conn {
                        stream,
                        decoder: FrameDecoder::new(self.cfg.conn.max_frame),
                        out: std::collections::VecDeque::new(),
                        out_head: 0,
                        out_bytes: 0,
                        role: Role::RejectBusy {
                            deadline: Instant::now() + BUSY_DEADLINE,
                            queued: false,
                        },
                        last_activity: Instant::now(),
                        parked: false,
                        close_after_flush: false,
                    },
                );
                self.active.push(id);
            }
            ShardMsg::Verified { token, outcome } => {
                let keep = self.on_verified(token, *outcome, buf);
                if !keep {
                    self.drop_conn(token);
                }
            }
            ShardMsg::Wake => {}
        }
    }

    /// Resumes a machine with its deferred verify outcome, then pumps
    /// any frames that queued in the decoder while it was parked.
    fn on_verified(&mut self, token: u64, outcome: VerifyOutcome, buf: &mut [u8]) -> Keep {
        let Some(conn) = self.conns.get_mut(&token) else {
            return true; // Peer hung up mid-verify; outcome discarded.
        };
        let step = match &mut conn.role {
            Role::Serve(sm) => sm.on_verify(outcome, &self.metrics),
            Role::RejectBusy { .. } => Step::Close,
        };
        let verify_tx = self.verify_tx.clone();
        if !apply_step(
            conn,
            step,
            &self.cfg,
            &self.metrics,
            verify_tx.as_ref(),
            self.idx,
            token,
        ) {
            return false;
        }
        let mut activity = true;
        let keep = self.pump_frames(token, &mut activity) && {
            let c = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return true,
            };
            c.flush(&mut activity) && !(c.close_after_flush && c.out.is_empty())
        };
        let _ = buf;
        keep
    }

    /// One readiness pass over one connection: read until the socket
    /// would block, decode and dispatch frames, flush replies.
    fn service_conn(&mut self, id: u64, buf: &mut [u8], activity: &mut bool) -> Keep {
        let Some(conn) = self.conns.get_mut(&id) else {
            return true;
        };

        // Over-cap connections: one frame (or the deadline) buys the
        // pre-framed BUSY reject, then close.
        if let Role::RejectBusy { deadline, queued } = &mut conn.role {
            if !*queued {
                match conn.stream.read(buf) {
                    Ok(0) => return false,
                    Ok(_) => {
                        *queued = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if Instant::now() >= *deadline {
                            *queued = true;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
                if *queued {
                    conn.enqueue_raw(&busy_frame());
                    conn.close_after_flush = true;
                    *activity = true;
                }
            }
            if !conn.flush(activity) {
                return false;
            }
            return !(conn.close_after_flush && conn.out.is_empty());
        }

        // Idle-timeout eviction (the read deadline of the blocking
        // runtime, enforced by sweep here).
        if let Some(limit) = self.cfg.conn.read_timeout {
            if conn.last_activity.elapsed() > limit {
                self.metrics.timeouts.inc();
                return false;
            }
        }

        // Read burst. While a verify is in flight the socket is left
        // unread — bytes back up in the kernel, which is the
        // backpressure we want on a handshake-spamming peer.
        if !conn.awaiting_verify() {
            for _ in 0..MAX_READS_PER_SCAN {
                match conn.stream.read(buf) {
                    Ok(0) => return false,
                    Ok(n) => {
                        conn.decoder.feed(&buf[..n]);
                        conn.last_activity = Instant::now();
                        conn.parked = false;
                        *activity = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
        }

        if !self.pump_frames(id, activity) {
            return false;
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return true;
        };
        if !conn.flush(activity) {
            return false;
        }
        !(conn.close_after_flush && conn.out.is_empty())
    }

    /// Decodes and dispatches every complete buffered frame, stopping
    /// when the machine offloads (deferred reply pending).
    fn pump_frames(&mut self, id: u64, activity: &mut bool) -> Keep {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return true;
            };
            if conn.awaiting_verify() || conn.close_after_flush {
                return true;
            }
            let payload = match conn.decoder.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => return true,
                Err(NetError::FrameTooLarge { .. }) => {
                    self.metrics.oversize_rejected.inc();
                    return false;
                }
                Err(_) => return false,
            };
            *activity = true;
            self.metrics.frames_in.inc();
            self.metrics.bytes_in.add(payload.len() as u64);
            let step = match NodeMessage::from_wire(&payload) {
                Ok(msg) => match &mut conn.role {
                    Role::Serve(sm) => sm.on_message(msg, &self.metrics),
                    Role::RejectBusy { .. } => Step::Close,
                },
                Err(_) => {
                    self.metrics.decode_failures.inc();
                    match &conn.role {
                        Role::Serve(sm) => sm.on_decode_error(),
                        Role::RejectBusy { .. } => Step::Close,
                    }
                }
            };
            let verify_tx = self.verify_tx.clone();
            if !apply_step(
                conn,
                step,
                &self.cfg,
                &self.metrics,
                verify_tx.as_ref(),
                self.idx,
                id,
            ) {
                return false;
            }
        }
    }

    /// Parks the connection if it has gone quiet: established (or an NO
    /// peer), nothing queued in either direction, no verify in flight,
    /// and idle past [`PARK_AFTER`]. The slow sweep is where parked
    /// connections are next examined (and where eviction catches them).
    fn maybe_park(&mut self, id: u64) {
        if let Some(c) = self.conns.get_mut(&id) {
            let parkable = match &c.role {
                Role::Serve(sm) => sm.parkable(),
                Role::RejectBusy { .. } => false,
            };
            if !c.parked
                && parkable
                && !c.awaiting_verify()
                && c.out.is_empty()
                && c.decoder.buffered() == 0
                && c.last_activity.elapsed() > PARK_AFTER
            {
                c.parked = true;
            }
        }
    }

    fn drop_conn(&mut self, id: u64) {
        if let Some(c) = self.conns.remove(&id) {
            if matches!(c.role, Role::Serve(_)) {
                self.live.fetch_sub(1, Ordering::SeqCst);
            }
            let _ = c.stream.shutdown(Shutdown::Both);
        }
    }

    fn drop_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.drop_conn(id);
        }
    }
}

/// Applies one [`Step`] to a connection. `false` closes it now.
fn apply_step(
    conn: &mut Conn,
    step: Step,
    cfg: &DaemonConfig,
    metrics: &NetMetrics,
    verify_tx: Option<&Sender<VerifyTask>>,
    shard: usize,
    token: u64,
) -> Keep {
    match step {
        Step::Reply(msg) => conn.enqueue(&msg, cfg, metrics),
        Step::ReplyClose(msg) => {
            let ok = conn.enqueue(&msg, cfg, metrics);
            conn.close_after_flush = true;
            ok
        }
        Step::Offload(req) => {
            let Some(tx) = verify_tx else {
                return false; // No pool for this role; treat as fatal.
            };
            match tx.try_send(VerifyTask { shard, token, req }) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    // Saturated pool: transient refusal, peer may retry.
                    metrics.backpressure_events.inc();
                    if let Role::Serve(sm) = &mut conn.role {
                        sm.abort_verify();
                    }
                    conn.enqueue(
                        &NodeMessage::Reject {
                            code: reject_code::BUSY,
                            detail: "verify queue full".to_owned(),
                        },
                        cfg,
                        metrics,
                    )
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        }
        Step::Close => false,
    }
}

/// The verify-pool worker: drain a burst, verify it as one batch under
/// one router-lock hold, post outcomes back to the owning shards.
fn verify_worker(
    rx: Receiver<VerifyTask>,
    shared: RouterShared,
    shard_txs: Vec<Sender<ShardMsg>>,
    metrics: Arc<NetMetrics>,
) {
    loop {
        let first = match rx.recv() {
            Ok(t) => t,
            Err(_) => return,
        };
        let mut batch = vec![first];
        while batch.len() < VERIFY_BATCH_MAX {
            match rx.try_recv() {
                Ok(t) => batch.push(t),
                Err(_) => break,
            }
        }
        let mut meta = Vec::with_capacity(batch.len());
        let mut reqs = Vec::with_capacity(batch.len());
        for t in batch {
            meta.push((t.shard, t.token));
            reqs.push(*t.req);
        }
        let t0 = Instant::now();
        let outcomes = lock_recover(&shared.router).process_access_requests(&reqs, wall_ms());
        metrics.access_verify_us.record_since(t0);
        for ((shard, token), outcome) in meta.into_iter().zip(outcomes) {
            // A shard gone at shutdown just discards the outcome.
            if let Some(tx) = shard_txs.get(shard) {
                let _ = tx.send(ShardMsg::Verified {
                    token,
                    outcome: Box::new(outcome),
                });
            }
        }
    }
}

/// Handle to a running sharded event loop (accept thread + `N` I/O
/// shard threads + verify pool).
pub(crate) struct EventLoop {
    addr: SocketAddr,
    stop_accept: Arc<AtomicBool>,
    quit: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    accept: Option<JoinHandle<()>>,
    shard_txs: Vec<Sender<ShardMsg>>,
    shard_threads: Vec<JoinHandle<()>>,
    shard_metrics: Vec<Arc<NetMetrics>>,
    verify_tx: Option<Sender<VerifyTask>>,
    workers: Vec<JoinHandle<()>>,
    pool_metrics: Arc<NetMetrics>,
    drain: Duration,
}

impl EventLoop {
    /// Binds `bind` and spawns the runtime: `shards` I/O threads (from
    /// `cfg.shards`, clamped to at least 1), one accept thread, and —
    /// for the router role — a verify pool sized to the machine.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the listener cannot bind.
    pub(crate) fn spawn(bind: &str, cfg: DaemonConfig, service: Service) -> Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let nshards = cfg.shards.max(1);
        let stop_accept = Arc::new(AtomicBool::new(false));
        let quit = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let pool_metrics = Arc::new(NetMetrics::default());

        let mut shard_txs = Vec::with_capacity(nshards);
        let mut shard_rxs = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let (tx, rx) = channel::unbounded();
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }

        // Verify pool: router role only (the NO machine never offloads).
        let (verify_tx, workers) = match &service {
            Service::Router(shared) => {
                let (tx, rx) = channel::bounded(VERIFY_QUEUE_CAP);
                let nworkers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                let workers = (0..nworkers)
                    .map(|_| {
                        let rx = rx.clone();
                        let shared = shared.clone();
                        let txs = shard_txs.clone();
                        let m = Arc::clone(&pool_metrics);
                        std::thread::spawn(move || verify_worker(rx, shared, txs, m))
                    })
                    .collect();
                (Some(tx), workers)
            }
            Service::No(_) => (None, Vec::new()),
        };

        let mut shard_metrics = Vec::with_capacity(nshards);
        let mut shard_threads = Vec::with_capacity(nshards);
        for (idx, rx) in shard_rxs.into_iter().enumerate() {
            let metrics = Arc::new(NetMetrics::default());
            shard_metrics.push(Arc::clone(&metrics));
            let state = ShardState {
                idx,
                cfg,
                service: service.clone(),
                verify_tx: verify_tx.clone(),
                metrics,
                live: Arc::clone(&live),
                conns: HashMap::new(),
                active: Vec::new(),
            };
            let q = Arc::clone(&quit);
            shard_threads.push(std::thread::spawn(move || state.run(rx, q)));
        }

        let a_stop = Arc::clone(&stop_accept);
        let a_live = Arc::clone(&live);
        let a_txs = shard_txs.clone();
        let a_metrics = shard_metrics.clone();
        let max_connections = cfg.max_connections;
        let accept = std::thread::spawn(move || {
            let mut conn_id = 0u64;
            for stream in listener.incoming() {
                if a_stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                conn_id += 1;
                let shard = (conn_id as usize) % a_txs.len();
                if a_live.load(Ordering::SeqCst) >= max_connections {
                    a_metrics[shard].connections_rejected.inc();
                    let _ = a_txs[shard].send(ShardMsg::RejectBusy(stream, conn_id));
                    continue;
                }
                a_metrics[shard].connections_accepted.inc();
                a_live.fetch_add(1, Ordering::SeqCst);
                let _ = a_txs[shard].send(ShardMsg::Serve(stream, conn_id));
            }
        });

        Ok(Self {
            addr,
            stop_accept,
            quit,
            live,
            accept: Some(accept),
            shard_txs,
            shard_threads,
            shard_metrics,
            verify_tx,
            workers,
            pool_metrics,
            drain: cfg.drain,
        })
    }

    /// The bound address (useful with port 0).
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently served (accepted, not yet closed) connections.
    pub(crate) fn live_connections(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Counter view summed across every shard and the verify pool.
    pub(crate) fn metrics(&self) -> MetricsSnapshot {
        let mut total = self.pool_metrics.snapshot();
        for m in &self.shard_metrics {
            total.merge(&m.snapshot());
        }
        total
    }

    /// Full telemetry merged across every shard and the verify pool.
    pub(crate) fn telemetry(&self) -> Snapshot {
        let mut total = self.pool_metrics.telemetry();
        for m in &self.shard_metrics {
            total.merge(&m.telemetry());
        }
        total
    }

    /// Graceful shutdown: stop accepting, wait up to `drain` for served
    /// connections to finish, then stop shards and the verify pool.
    pub(crate) fn shutdown(&mut self, drain: Duration) {
        if self.accept.is_none() {
            return;
        }
        self.stop_accept.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + drain;
        while self.live.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.quit.store(true, Ordering::SeqCst);
        for tx in &self.shard_txs {
            let _ = tx.send(ShardMsg::Wake);
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        self.shard_txs.clear();
        self.verify_tx = None;
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        self.shutdown(self.drain);
    }
}
