//! Length-prefixed framing over byte streams.
//!
//! Every PEACE network message travels as one *frame*: a 4-byte big-endian
//! payload length followed by the payload (a wire-encoded
//! [`NodeMessage`](crate::envelope::NodeMessage)). The reader enforces a
//! configurable upper bound on the declared length *before* allocating, so
//! a hostile or corrupted peer cannot balloon memory, and every failure
//! surfaces as a clean [`NetError`] — never a panic.

use std::io::{Read, Write};

use crate::error::{NetError, Result};

/// Byte width of the length prefix.
pub const FRAME_HEADER_LEN: usize = 4;

/// Default upper bound on a frame payload (1 MiB). Beacons with large
/// revocation lists are a few tens of KiB; anything near this bound is
/// hostile.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] if the payload exceeds `max_frame`;
/// otherwise any socket error, with timeouts mapped to
/// [`NetError::Timeout`].
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_frame: usize) -> Result<()> {
    if payload.len() > max_frame {
        return Err(NetError::FrameTooLarge {
            declared: payload.len() as u64,
            max: max_frame as u64,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| NetError::FrameTooLarge {
        declared: payload.len() as u64,
        max: u64::from(u32::MAX),
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, rejecting payloads longer than `max_frame` before
/// allocating.
///
/// # Errors
///
/// [`NetError::Closed`] on EOF at a frame boundary or mid-frame,
/// [`NetError::Timeout`] on a missed read deadline, and
/// [`NetError::FrameTooLarge`] when the declared length exceeds the bound
/// (after which the stream is desynchronized and must be dropped).
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Vec<u8>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let declared = u32::from_be_bytes(header) as usize;
    if declared > max_frame {
        return Err(NetError::FrameTooLarge {
            declared: declared as u64,
            max: max_frame as u64,
        });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap(),
            b"hello frame"
        );
        assert_eq!(read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap(), b"");
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Err(NetError::Closed)
        );
    }

    #[test]
    fn oversized_write_rejected() {
        let mut buf = Vec::new();
        let big = vec![0u8; 64];
        assert_eq!(
            write_frame(&mut buf, &big, 63),
            Err(NetError::FrameTooLarge {
                declared: 64,
                max: 63
            })
        );
        assert!(buf.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        // Header claims 256 MiB; bound is 1 KiB — must fail without reading on.
        let mut bytes = (256u32 << 20).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cur, 1024),
            Err(NetError::FrameTooLarge {
                declared: 256 << 20,
                max: 1024
            })
        );
    }

    #[test]
    fn truncated_frame_is_clean_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload", DEFAULT_MAX_FRAME).unwrap();
        for cut in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            assert_eq!(
                read_frame(&mut cur, DEFAULT_MAX_FRAME),
                Err(NetError::Closed),
                "cut at {cut}"
            );
        }
    }
}
