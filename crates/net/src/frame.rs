//! Length-prefixed framing over byte streams.
//!
//! Every PEACE network message travels as one *frame*: a 4-byte big-endian
//! payload length followed by the payload (a wire-encoded
//! [`NodeMessage`](crate::envelope::NodeMessage)). The reader enforces a
//! configurable upper bound on the declared length *before* allocating, so
//! a hostile or corrupted peer cannot balloon memory, and every failure
//! surfaces as a clean [`NetError`] — never a panic.

use std::io::{Read, Write};

use crate::error::{NetError, Result};

/// Byte width of the length prefix.
pub const FRAME_HEADER_LEN: usize = 4;

/// Default upper bound on a frame payload (1 MiB). Beacons with large
/// revocation lists are a few tens of KiB; anything near this bound is
/// hostile.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] if the payload exceeds `max_frame`;
/// otherwise any socket error, with timeouts mapped to
/// [`NetError::Timeout`].
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_frame: usize) -> Result<()> {
    if payload.len() > max_frame {
        return Err(NetError::FrameTooLarge {
            declared: payload.len() as u64,
            max: max_frame as u64,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| NetError::FrameTooLarge {
        declared: payload.len() as u64,
        max: u64::from(u32::MAX),
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, rejecting payloads longer than `max_frame` before
/// allocating.
///
/// # Errors
///
/// [`NetError::Closed`] on EOF at a frame boundary or mid-frame,
/// [`NetError::Timeout`] on a missed read deadline, and
/// [`NetError::FrameTooLarge`] when the declared length exceeds the bound
/// (after which the stream is desynchronized and must be dropped).
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Vec<u8>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let declared = u32::from_be_bytes(header) as usize;
    if declared > max_frame {
        return Err(NetError::FrameTooLarge {
            declared: declared as u64,
            max: max_frame as u64,
        });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Incremental frame decoder: arbitrary byte fragments in, whole frames
/// out. This is the transport-agnostic framing core shared by the
/// blocking [`Connection`](crate::conn::Connection) and the sharded
/// [event loop](crate::reactor): both feed whatever the socket produced
/// (a 1-byte read, a split length prefix, three coalesced frames) and
/// pull complete payloads, so framing behaves identically no matter how
/// the kernel fragments the stream (property-tested in
/// `tests/framing_partial.rs` against [`read_frame`]).
///
/// The buffer keeps a consumed-front offset instead of shifting bytes on
/// every extraction; compaction is amortized. Each payload is copied out
/// exactly once, at extraction.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
    poisoned: bool,
}

/// Compact once the dead front region exceeds this many bytes (or the
/// whole buffer is consumed, which is free).
const COMPACT_THRESHOLD: usize = 16 * 1024;

impl FrameDecoder {
    /// A decoder enforcing `max_frame` on every declared length, checked
    /// before any payload allocation.
    pub fn new(max_frame: usize) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            max_frame,
            poisoned: false,
        }
    }

    /// Appends raw stream bytes. Call [`Self::next_frame`] until it
    /// returns `None` after each feed — one fragment can complete
    /// several frames.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Bytes buffered but not yet returned as a frame (header bytes of a
    /// partial frame included).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLarge`] when a declared length exceeds the
    /// bound. The stream is desynchronized past this point, so the
    /// decoder stays poisoned: every later call repeats the error and
    /// the connection must be dropped (exactly the [`read_frame`]
    /// contract).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.poisoned {
            return Err(NetError::FrameTooLarge {
                declared: self.max_frame as u64 + 1,
                max: self.max_frame as u64,
            });
        }
        let avail = self.buf.len() - self.start;
        if avail < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let mut header = [0u8; FRAME_HEADER_LEN];
        header.copy_from_slice(&self.buf[self.start..self.start + FRAME_HEADER_LEN]);
        let declared = u32::from_be_bytes(header) as usize;
        if declared > self.max_frame {
            self.poisoned = true;
            return Err(NetError::FrameTooLarge {
                declared: declared as u64,
                max: self.max_frame as u64,
            });
        }
        if avail < FRAME_HEADER_LEN + declared {
            return Ok(None);
        }
        let lo = self.start + FRAME_HEADER_LEN;
        let payload = self.buf[lo..lo + declared].to_vec();
        self.start = lo + declared;
        self.compact();
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn decoder_matches_read_frame_over_fragments() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut wire, b"", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut wire, &[7u8; 300], DEFAULT_MAX_FRAME).unwrap();
        // Worst-case fragmentation: one byte at a time.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut got = Vec::new();
        for b in &wire {
            dec.feed(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![b"alpha".to_vec(), Vec::new(), vec![7u8; 300]]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_coalesced_feed_yields_all_frames() {
        let mut wire = Vec::new();
        for i in 0..5u8 {
            write_frame(&mut wire, &[i; 10], DEFAULT_MAX_FRAME).unwrap();
        }
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&wire);
        let mut n = 0;
        while let Some(f) = dec.next_frame().unwrap() {
            assert_eq!(f, vec![n as u8; 10]);
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn decoder_oversize_poisons() {
        let mut dec = FrameDecoder::new(16);
        dec.feed(&1024u32.to_be_bytes());
        let e = dec.next_frame().unwrap_err();
        assert_eq!(
            e,
            NetError::FrameTooLarge {
                declared: 1024,
                max: 16
            }
        );
        // Poisoned: the stream is desynchronized, later calls keep failing.
        dec.feed(&[0u8; 64]);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap(),
            b"hello frame"
        );
        assert_eq!(read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap(), b"");
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Err(NetError::Closed)
        );
    }

    #[test]
    fn oversized_write_rejected() {
        let mut buf = Vec::new();
        let big = vec![0u8; 64];
        assert_eq!(
            write_frame(&mut buf, &big, 63),
            Err(NetError::FrameTooLarge {
                declared: 64,
                max: 63
            })
        );
        assert!(buf.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        // Header claims 256 MiB; bound is 1 KiB — must fail without reading on.
        let mut bytes = (256u32 << 20).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cur, 1024),
            Err(NetError::FrameTooLarge {
                declared: 256 << 20,
                max: 1024
            })
        );
    }

    #[test]
    fn truncated_frame_is_clean_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload", DEFAULT_MAX_FRAME).unwrap();
        for cut in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            assert_eq!(
                read_frame(&mut cur, DEFAULT_MAX_FRAME),
                Err(NetError::Closed),
                "cut at {cut}"
            );
        }
    }
}
