//! Deterministic world construction for the node runtime.
//!
//! Real daemons run in separate processes, but PEACE's trust material
//! (system secret `γ`, router certificates, user credentials) originates in
//! one setup ceremony. The runtime reproduces that ceremony *bit-for-bit
//! in every process* by deriving all randomness from one seed: a NO daemon,
//! a router daemon, and a user daemon started with the same [`WorldSpec`]
//! reconstruct the identical operator, routers, and enrolled users, so no
//! key file ever crosses a socket. (Operationally this stands in for the
//! out-of-band provisioning channel the paper assumes in §IV.A.)

use peace_groupsig::RevocationToken;
use peace_protocol::entities::{GroupManager, MeshRouter, NetworkOperator, Ttp, UserClient};
use peace_protocol::ids::{GroupId, UserId};
use peace_protocol::ProtocolConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{NetError, Result};

/// Everything needed to replay the setup ceremony.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorldSpec {
    /// Master seed for every key in the deployment.
    pub seed: u64,
    /// Number of enrolled users (all in one group, `user-<n>`).
    pub users: usize,
    /// Number of provisioned routers (`MR-<n>`).
    pub routers: usize,
}

impl Default for WorldSpec {
    fn default() -> Self {
        Self {
            seed: 1,
            users: 4,
            routers: 2,
        }
    }
}

/// The replayed world: identical in every process given the same spec.
pub struct BuiltWorld {
    /// The network operator (system secret, grt, signing key).
    pub no: NetworkOperator,
    /// The group manager holding enrollment receipts.
    pub gm: GroupManager,
    /// The trusted third party.
    pub ttp: Ttp,
    /// Provisioned routers, in provisioning order.
    pub routers: Vec<MeshRouter>,
    /// Enrolled users, in enrollment order.
    pub users: Vec<UserClient>,
    /// Each user's revocation token (index-aligned with `users`) — what NO
    /// feeds to `revoke_member` for dynamic user revocation.
    pub tokens: Vec<RevocationToken>,
    /// RNG state after the ceremony (for post-setup randomness in the same
    /// process, e.g. beacon nonces).
    pub rng: StdRng,
}

/// Replays the setup ceremony for `spec` and returns the built world.
///
/// # Errors
///
/// [`NetError::Unexpected`] if any ceremony step fails — impossible for a
/// well-formed spec, but the runtime never panics.
pub fn build_world(spec: &WorldSpec) -> Result<BuiltWorld> {
    build_world_with(spec, ProtocolConfig::default())
}

/// [`build_world`] with an explicit protocol configuration — e.g.
/// fixed-bases mode with the router-side revocation prefilter armed
/// (`peace-noded --prefilter`). The config does not feed the RNG, but
/// every process in a deployment must pass the same one so signers and
/// verifiers agree on the bases mode.
///
/// # Errors
///
/// [`NetError::Unexpected`] if any ceremony step fails.
pub fn build_world_with(spec: &WorldSpec, config: ProtocolConfig) -> Result<BuiltWorld> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut no = NetworkOperator::new(config, &mut rng);

    let gid: GroupId = no.register_group("metro-users", &mut rng);
    let (gm_bundle, ttp_bundle) = no
        .issue_shares(gid, spec.users, &mut rng)
        .map_err(|_| NetError::Unexpected("share issuance failed"))?;
    let mut gm = GroupManager::new(gid);
    gm.receive_bundle(&gm_bundle, no.npk())
        .map_err(|_| NetError::Unexpected("GM bundle rejected"))?;
    let mut ttp = Ttp::new();
    ttp.receive_bundle(&ttp_bundle, no.npk())
        .map_err(|_| NetError::Unexpected("TTP bundle rejected"))?;

    let mut users = Vec::with_capacity(spec.users);
    let mut tokens = Vec::with_capacity(spec.users);
    for n in 0..spec.users {
        let uid = UserId(format!("user-{n}"));
        let mut user = UserClient::new(uid.clone(), *no.gpk(), *no.npk(), *no.config(), &mut rng);
        let assignment = gm
            .assign(&uid)
            .map_err(|_| NetError::Unexpected("GM out of shares"))?;
        let delivery = ttp
            .deliver(assignment.index, &uid)
            .map_err(|_| NetError::Unexpected("TTP delivery failed"))?;
        let receipt = user
            .enroll(&assignment, &delivery)
            .map_err(|_| NetError::Unexpected("enrollment failed"))?;
        gm.store_receipt(&uid, receipt);
        let token = user
            .active_credential()
            .map_err(|_| NetError::Unexpected("no credential after enrollment"))?
            .key
            .revocation_token();
        tokens.push(token);
        users.push(user);
    }

    let mut routers = Vec::with_capacity(spec.routers);
    for n in 0..spec.routers {
        routers.push(no.provision_router(&format!("MR-{n}"), u64::MAX / 2, &mut rng));
    }

    Ok(BuiltWorld {
        no,
        gm,
        ttp,
        routers,
        users,
        tokens,
        rng,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identical_world() {
        let spec = WorldSpec::default();
        let a = build_world(&spec).unwrap();
        let b = build_world(&spec).unwrap();
        assert_eq!(a.no.npk().to_bytes(), b.no.npk().to_bytes());
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.routers[0].cert().serial, b.routers[0].cert().serial);
        assert_eq!(
            a.routers[1].cert().public_key.to_bytes(),
            b.routers[1].cert().public_key.to_bytes()
        );
    }

    #[test]
    fn different_seed_differs() {
        let a = build_world(&WorldSpec::default()).unwrap();
        let b = build_world(&WorldSpec {
            seed: 2,
            ..WorldSpec::default()
        })
        .unwrap();
        assert_ne!(a.no.npk().to_bytes(), b.no.npk().to_bytes());
        assert_ne!(a.tokens[0], b.tokens[0]);
    }

    #[test]
    fn cross_replay_handshake_works() {
        // A user from one replay authenticates against a router from an
        // independent replay — the multi-process guarantee in miniature.
        let spec = WorldSpec::default();
        let mut wa = build_world(&spec).unwrap();
        let mut wb = build_world(&spec).unwrap();
        let router = &mut wa.routers[0];
        let user = &mut wb.users[0];
        let beacon = router.beacon(10_000, &mut wa.rng);
        let req = user.request_access(&beacon, 10_050, &mut wb.rng).unwrap();
        let (confirm, mut r_sess) = router.process_access_request(&req, 10_100).unwrap();
        let mut u_sess = user.handle_access_confirm(&confirm, 10_150).unwrap();
        let c = u_sess.seal_data(b"cross-process hello");
        assert_eq!(r_sess.open_data(&c).unwrap(), b"cross-process hello");
    }
}
