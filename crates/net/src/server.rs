//! Shared accept-loop machinery for the node daemons: connection-count
//! limiting, panic containment, and graceful shutdown.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Sender};
use peace_wire::Encode;

use crate::envelope::{reject_code, NodeMessage};
use crate::frame::read_frame;
use crate::metrics::NetMetrics;

/// How long a turned-away connection is serviced (one frame read, one
/// reject write) before it is dropped regardless.
const BUSY_REPLY_TIMEOUT: Duration = Duration::from_millis(200);

/// Turned-away connections queued for the single reject-servicer thread.
/// Overflow past this bound is dropped outright (a plain close instead of
/// an explicit BUSY reject) — a reject storm must never grow daemon
/// memory or thread count.
const BUSY_QUEUE_CAP: usize = 64;

/// The pre-framed `Reject { code: BUSY }` a daemon writes to connections
/// turned away at its connection cap, so clients observe an explicit,
/// machine-readable *transient* refusal ([`crate::NetError::ConnLimit`])
/// instead of an ambiguous severed stream.
pub(crate) fn busy_frame() -> Vec<u8> {
    let reject = NodeMessage::Reject {
        code: reject_code::BUSY,
        detail: "connection limit reached".to_owned(),
    };
    // Encoding a static reject cannot exceed any sane frame bound; fall
    // back to an empty reply (plain close) rather than panicking.
    let payload = reject.try_to_wire().unwrap_or_default();
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

/// Services one turned-away connection: consume the client's first frame
/// (so the close is a clean FIN, not a RST that could discard the reject
/// in flight), write the pre-framed BUSY reject, and shut down. Every
/// step is best-effort and bounded by [`BUSY_REPLY_TIMEOUT`]. Runs on
/// the acceptor's single reject-servicer thread — rejections are never
/// serviced by per-connection thread spawns.
fn service_busy(mut stream: TcpStream, busy: &[u8]) {
    let _ = stream.set_read_timeout(Some(BUSY_REPLY_TIMEOUT));
    let _ = stream.set_write_timeout(Some(BUSY_REPLY_TIMEOUT));
    let _ = read_frame(&mut stream, crate::frame::DEFAULT_MAX_FRAME);
    let _ = stream.write_all(busy);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Handle to a running accept loop.
pub(crate) struct Acceptor {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    thread: Option<JoinHandle<()>>,
    reject_thread: Option<JoinHandle<()>>,
}

impl Acceptor {
    /// Binds `bind` and spawns the accept loop. Each accepted stream runs
    /// `handler` on its own thread; panics inside a handler are caught and
    /// counted (`handler_panics`), never unwound across the daemon.
    pub(crate) fn spawn(
        bind: &str,
        max_connections: usize,
        metrics: Arc<NetMetrics>,
        handler: Arc<dyn Fn(TcpStream, u64) + Send + Sync>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let busy = busy_frame();

        // One servicer thread owns every turned-away connection, fed by
        // a bounded queue: rejection cost is O(1) threads no matter how
        // hard the cap is hammered.
        let (reject_tx, reject_rx) = channel::bounded::<TcpStream>(BUSY_QUEUE_CAP);
        let reject_thread = std::thread::spawn(move || {
            while let Ok(stream) = reject_rx.recv() {
                service_busy(stream, &busy);
            }
        });

        let t_shutdown = Arc::clone(&shutdown);
        let t_live = Arc::clone(&live);
        let thread = std::thread::spawn(move || {
            let reject_tx: Sender<TcpStream> = reject_tx;
            let mut conn_id = 0u64;
            for stream in listener.incoming() {
                if t_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if t_live.load(Ordering::SeqCst) >= max_connections {
                    metrics.connections_rejected.inc();
                    // Queue full: drop without the courtesy reject.
                    let _ = reject_tx.try_send(stream);
                    continue;
                }
                metrics.connections_accepted.inc();
                conn_id += 1;
                t_live.fetch_add(1, Ordering::SeqCst);
                let h = Arc::clone(&handler);
                let h_live = Arc::clone(&t_live);
                let h_metrics = Arc::clone(&metrics);
                let id = conn_id;
                std::thread::spawn(move || {
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| h(stream, id)));
                    if outcome.is_err() {
                        h_metrics.handler_panics.inc();
                    }
                    h_live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });

        Ok(Self {
            addr,
            shutdown,
            live,
            thread: Some(thread),
            reject_thread: Some(reject_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live handler-thread count.
    pub(crate) fn live_connections(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, wake the blocked `accept`, and
    /// wait up to `drain` for in-flight handlers to finish.
    pub(crate) fn shutdown(&mut self, drain: Duration) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        // The accept thread owned the only reject sender; the servicer
        // drains what is queued and exits.
        if let Some(t) = self.reject_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + drain;
        while self.live.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Acceptor {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown(Duration::from_millis(500));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn accepts_and_limits_connections() {
        let metrics = Arc::new(NetMetrics::default());
        let handler: Arc<dyn Fn(TcpStream, u64) + Send + Sync> =
            Arc::new(|mut stream: TcpStream, _id| {
                // Hold the connection open until the client closes.
                let mut b = [0u8; 1];
                let _ = stream.read(&mut b);
            });
        let mut acc = Acceptor::spawn("127.0.0.1:0", 2, Arc::clone(&metrics), handler).unwrap();
        let addr = acc.addr();

        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        // Give the accept loop time to register both.
        let deadline = Instant::now() + Duration::from_secs(2);
        while acc.live_connections() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(acc.live_connections(), 2);

        // Third connection is turned away with an explicit BUSY reject.
        let mut c3 = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while metrics.snapshot().connections_rejected == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(metrics.snapshot().connections_rejected, 1);
        c3.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let payload = read_frame(&mut c3, crate::frame::DEFAULT_MAX_FRAME).unwrap();
        use peace_wire::Decode as _;
        match NodeMessage::from_wire(&payload).unwrap() {
            NodeMessage::Reject { code, .. } => assert_eq!(code, reject_code::BUSY),
            other => panic!("expected BUSY reject, got {other:?}"),
        }
        let mut buf = [0u8; 1];
        assert_eq!(c3.read(&mut buf).unwrap_or(0), 0, "rejected conn closed");

        drop(c1);
        drop(c2);
        acc.shutdown(Duration::from_secs(2));
        assert_eq!(acc.live_connections(), 0);
        assert_eq!(metrics.snapshot().handler_panics, 0);
    }

    #[test]
    fn handler_panic_contained_and_counted() {
        let metrics = Arc::new(NetMetrics::default());
        let handler: Arc<dyn Fn(TcpStream, u64) + Send + Sync> =
            Arc::new(|_stream, _id| panic!("deliberate"));
        let mut acc = Acceptor::spawn("127.0.0.1:0", 4, Arc::clone(&metrics), handler).unwrap();
        let mut c = TcpStream::connect(acc.addr()).unwrap();
        let _ = c.write_all(b"x");
        let deadline = Instant::now() + Duration::from_secs(2);
        while metrics.snapshot().handler_panics == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(metrics.snapshot().handler_panics, 1);
        acc.shutdown(Duration::from_secs(1));
    }
}
