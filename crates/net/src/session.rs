//! Transport-agnostic session state machines for the server roles.
//!
//! The protocol logic that used to live inline in the blocking
//! per-connection `serve` loops of `daemon/{router,no}.rs` is factored
//! here as pure message-in / [`Step`]-out state machines. Both runtimes
//! drive the same machines:
//!
//! * the blocking thread-per-connection runtime calls
//!   [`RouterSm::on_message`] after every `Connection::recv`, performing
//!   the verify offload synchronously (send job, block on the reply);
//! * the sharded event loop feeds decoded frames from its
//!   [`FrameDecoder`](crate::frame::FrameDecoder), hands
//!   [`Step::Offload`] to the crossbeam worker pool, and resumes the
//!   machine with [`RouterSm::on_verify`] when the deferred outcome
//!   comes back.
//!
//! Because the machine is the single source of protocol behavior, the
//! two runtimes cannot drift: the fault-proxy and loopback integration
//! suites exercise the same decisions regardless of runtime.
//!
//! The machines also own the **router-side per-leg handshake
//! histograms** (`net.hs_beacon_us`, `net.hs_confirm_us`,
//! `net.hs_total_us`): beacon service time, access-verify turnaround
//! (request receipt → confirm ready, queueing included), and the whole
//! router-observed handshake (beacon request receipt → confirm ready).
//! Before this refactor only the *user* agent recorded these, so the
//! router document in `BENCH_net.json` carried empty histograms.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use peace_ledger::{AccessRecord, LedgerRecord, ReplicatedLedger};
use peace_protocol::entities::{MeshRouter, NetworkOperator};
use peace_protocol::{AccessConfirm, ProtocolError, Session};
use rand::rngs::StdRng;

use crate::clock::wall_ms;
use crate::envelope::{reject_code, Bulletin, NodeMessage};
use crate::metrics::NetMetrics;

use crate::daemon::lock_recover;

/// What the runtime must do next with a connection after feeding its
/// state machine one event.
#[derive(Debug)]
pub(crate) enum Step {
    /// Send the reply; keep the connection open.
    Reply(NodeMessage),
    /// Send the reply, then close the connection.
    ReplyClose(NodeMessage),
    /// Hand the access request to the verify pool; the machine is now
    /// awaiting [`RouterSm::on_verify`] and must not be fed further
    /// messages until it fires.
    Offload(Box<peace_protocol::AccessRequest>),
    /// Close the connection without sending anything.
    Close,
}

/// A deferred verification outcome, as produced by
/// [`MeshRouter::process_access_requests`] for one request.
pub(crate) type VerifyOutcome = Result<(AccessConfirm, Session), ProtocolError>;

/// Shared router-daemon state the machine needs: the entity behind its
/// mutex and the daemon RNG for beacon nonces.
#[derive(Clone)]
pub(crate) struct RouterShared {
    pub(crate) router: Arc<Mutex<MeshRouter>>,
    pub(crate) rng: Arc<Mutex<StdRng>>,
}

/// Maps a protocol failure to the wire reject code the user agent keys
/// its retry decision on: revocation is terminal, everything else is
/// worth a fresh handshake (the request may simply have been mangled in
/// flight).
pub(crate) fn code_for(err: &ProtocolError) -> u16 {
    match err {
        ProtocolError::SignerRevoked | ProtocolError::CertificateRevoked => reject_code::REVOKED,
        _ => reject_code::AUTH_FAILED,
    }
}

/// Router-side per-connection machine: beacon requests and one M.2 →
/// M.3 handshake, then AEAD echo service on the established session.
pub(crate) struct RouterSm {
    shared: RouterShared,
    session: Option<Session>,
    /// Set when the connection's `GetBeacon` arrives; anchors
    /// `net.hs_total_us`.
    hs_started: Option<Instant>,
    /// Set when an `AccessRequest` is offloaded; anchors
    /// `net.hs_confirm_us` and marks the machine as awaiting a deferred
    /// verify outcome.
    verify_sent: Option<Instant>,
}

impl RouterSm {
    pub(crate) fn new(shared: RouterShared) -> Self {
        Self {
            shared,
            session: None,
            hs_started: None,
            verify_sent: None,
        }
    }

    /// True while an offloaded verification is in flight: the runtime
    /// must park inbound frames until [`Self::on_verify`] resolves it.
    pub(crate) fn awaiting_verify(&self) -> bool {
        self.verify_sent.is_some()
    }

    /// Abandons an in-flight offload without an outcome: the runtime
    /// could not enqueue the job (verify pool saturated) and will send
    /// its own transient BUSY reject. The machine returns to the
    /// pre-request state so the peer may retry on the same connection.
    pub(crate) fn abort_verify(&mut self) {
        self.verify_sent = None;
        self.hs_started = None;
    }

    /// True once the anonymous-access handshake has produced a session
    /// key. Mid-handshake connections must never leave the fast sweep:
    /// the next protocol leg arrives within the client's crypto time
    /// (single-digit ms), and deferring it to the slow parked scan would
    /// graft the park period onto every handshake's tail.
    pub(crate) fn established(&self) -> bool {
        self.session.is_some()
    }

    /// An undecodable frame before/after any message: not worth killing
    /// the connection over before authentication (fault proxy, hostile
    /// peer); tell the peer and keep listening.
    pub(crate) fn on_decode_error(&self) -> Step {
        Step::Reply(NodeMessage::Reject {
            code: reject_code::MALFORMED,
            detail: "undecodable envelope".to_owned(),
        })
    }

    pub(crate) fn on_message(&mut self, msg: NodeMessage, metrics: &NetMetrics) -> Step {
        match msg {
            NodeMessage::GetBeacon => {
                let t0 = Instant::now();
                self.hs_started = Some(t0);
                let beacon = {
                    let mut r = lock_recover(&self.shared.router);
                    let mut g = lock_recover(&self.shared.rng);
                    r.beacon(wall_ms(), &mut *g)
                };
                metrics.hs_beacon_us.record_since(t0);
                Step::Reply(NodeMessage::Beacon(Box::new(beacon)))
            }
            NodeMessage::AccessRequest(req) => {
                self.verify_sent = Some(Instant::now());
                Step::Offload(req)
            }
            NodeMessage::Data(ciphertext) => match self.session.as_mut() {
                Some(sess) => match sess.open_data(&ciphertext) {
                    Ok(plain) => {
                        let echo = sess.seal_data(&plain);
                        Step::Reply(NodeMessage::Data(echo))
                    }
                    Err(_) => {
                        // Strict in-order AEAD: a bad record is fatal to
                        // the session (no resync point).
                        Step::ReplyClose(NodeMessage::Reject {
                            code: reject_code::MALFORMED,
                            detail: "AEAD record rejected".to_owned(),
                        })
                    }
                },
                None => Step::Reply(NodeMessage::Reject {
                    code: reject_code::NO_SESSION,
                    detail: "data before handshake".to_owned(),
                }),
            },
            NodeMessage::Bye => Step::Close,
            _ => Step::ReplyClose(NodeMessage::Reject {
                code: reject_code::MALFORMED,
                detail: "unexpected message for a router".to_owned(),
            }),
        }
    }

    /// Resumes the machine with the deferred verification outcome.
    pub(crate) fn on_verify(&mut self, outcome: VerifyOutcome, metrics: &NetMetrics) -> Step {
        if let Some(sent) = self.verify_sent.take() {
            metrics.hs_confirm_us.record_since(sent);
        }
        match outcome {
            Ok((confirm, sess)) => {
                metrics.handshakes_ok.inc();
                if let Some(t0) = self.hs_started.take() {
                    metrics.hs_total_us.record_since(t0);
                }
                self.session = Some(sess);
                Step::Reply(NodeMessage::AccessConfirm(Box::new(confirm)))
            }
            Err(e) => {
                metrics.handshakes_fail.inc();
                metrics.event("handshake_fail", e.code());
                Step::Reply(NodeMessage::Reject {
                    code: code_for(&e),
                    detail: e.code().to_owned(),
                })
            }
        }
    }
}

/// Shared NO-daemon state the machine needs.
#[derive(Clone)]
pub(crate) struct NoShared {
    pub(crate) no: Arc<Mutex<NetworkOperator>>,
    pub(crate) ledger: Arc<Mutex<Option<ReplicatedLedger>>>,
    pub(crate) auto_checkpoint: Arc<AtomicBool>,
}

/// NO-side per-connection machine: any number of bulletin requests,
/// session reports, gossip digests, range pulls, and URL deltas until
/// the peer says `Bye` or misbehaves. Stateless between messages — all
/// durable state lives in the shared operator and ledger.
pub(crate) struct NoSm {
    shared: NoShared,
}

impl NoSm {
    pub(crate) fn new(shared: NoShared) -> Self {
        Self { shared }
    }

    /// NO drops peers that send garbage (the pre-refactor behavior: a
    /// mangled frame ended the handler loop).
    pub(crate) fn on_decode_error(&self) -> Step {
        Step::Close
    }

    pub(crate) fn on_message(&mut self, msg: NodeMessage, metrics: &NetMetrics) -> Step {
        match msg {
            NodeMessage::GetBulletin => {
                let bulletin = {
                    let op = lock_recover(&self.shared.no);
                    let now = wall_ms();
                    Bulletin {
                        epoch: op.epoch(),
                        crl: op.publish_crl(now),
                        url: op.publish_url(now),
                    }
                };
                Step::Reply(NodeMessage::Bulletin(bulletin))
            }
            NodeMessage::ReportSessions { router, sessions } => {
                let now = wall_ms();
                let mut accepted: u32 = 0;
                {
                    // Lock order: operator, then ledger (same as the
                    // daemon-side methods).
                    let mut op = lock_recover(&self.shared.no);
                    let mut slot = lock_recover(&self.shared.ledger);
                    for session in sessions {
                        if let Some(rl) = slot.as_mut() {
                            // Idempotent ingestion: a router that retries a
                            // report after a lost ack — or fails over to
                            // this replica with a batch another replica
                            // already mirrored here — must not duplicate
                            // transcripts. Checked across every shard.
                            let sid = session.session_id.to_bytes();
                            if rl.find_session(&sid).is_some() {
                                continue;
                            }
                            let rec = LedgerRecord::Access(AccessRecord {
                                router: router.clone(),
                                session: session.clone(),
                            });
                            if let Err(e) = rl.local_mut().append(rec, now) {
                                metrics.ledger_errors.inc();
                                metrics.event("ledger_error", e.code());
                                continue;
                            }
                            metrics.ledger_sessions.inc();
                        }
                        op.record_session(session);
                        accepted += 1;
                    }
                    if let Some(rl) = slot.as_mut() {
                        // One durability point per report, not per record.
                        if let Err(e) = rl.flush() {
                            metrics.ledger_errors.inc();
                            metrics.event("ledger_error", e.code());
                        }
                        // Federated mode: checkpoint the accepted batch so
                        // peers can pull it on the next gossip round
                        // (ranges only travel up to a signed checkpoint).
                        if accepted > 0 && self.shared.auto_checkpoint.load(Ordering::Relaxed) {
                            let signer = rl.local_id().to_owned();
                            if let Err(e) =
                                rl.local_mut().checkpoint(op.signing_key(), &signer, now)
                            {
                                metrics.ledger_errors.inc();
                                metrics.event("ledger_error", e.code());
                            }
                        }
                    }
                }
                Step::Reply(NodeMessage::ReportAck { accepted })
            }
            NodeMessage::CkptGossip { .. } => {
                let digests = {
                    let slot = lock_recover(&self.shared.ledger);
                    slot.as_ref()
                        .map(|rl| (rl.local_id().to_owned(), rl.digests()))
                };
                Step::Reply(match digests {
                    Some((from_no, digests)) => NodeMessage::CkptGossip { from_no, digests },
                    None => NodeMessage::Reject {
                        code: reject_code::INTERNAL,
                        detail: "no replica ledger attached".to_owned(),
                    },
                })
            }
            NodeMessage::RangePull { writer, from_seq } => {
                let served = {
                    let slot = lock_recover(&self.shared.ledger);
                    slot.as_ref().map(|rl| rl.serve_range(&writer, from_seq))
                };
                Step::Reply(match served {
                    Some(Ok(range)) => {
                        if range.is_some() {
                            metrics.repl_ranges_out.inc();
                        }
                        NodeMessage::RangePush {
                            range: range.map(Box::new),
                        }
                    }
                    Some(Err(e)) => {
                        metrics.event("repl_refuse", e.code());
                        NodeMessage::Reject {
                            code: reject_code::INTERNAL,
                            detail: e.code().to_owned(),
                        }
                    }
                    None => NodeMessage::Reject {
                        code: reject_code::INTERNAL,
                        detail: "no replica ledger attached".to_owned(),
                    },
                })
            }
            NodeMessage::GetUrlDelta {
                epoch,
                have_version,
            } => {
                // O(churn) fast lane: a signed diff when one chains from
                // the caller's (epoch, version), else None → full bulletin.
                // A freshly-signed CRL and a detached URL re-stamp ride
                // along either way: the CRL is router-scale (small) and
                // the re-stamp is O(1), and the caller's beacons need
                // both lists younger than list_max_age between full
                // fetches.
                let now = wall_ms();
                let (crl, restamp, delta) = {
                    let op = lock_recover(&self.shared.no);
                    (
                        op.publish_crl(now),
                        op.restamp_url(now),
                        op.publish_url_delta(epoch, have_version, now),
                    )
                };
                if delta.is_some() {
                    metrics.url_deltas_out.inc();
                }
                Step::Reply(NodeMessage::UrlDelta {
                    crl: Box::new(crl),
                    restamp,
                    delta: delta.map(Box::new),
                })
            }
            NodeMessage::Bye => Step::Close,
            _ => Step::ReplyClose(NodeMessage::Reject {
                code: reject_code::MALFORMED,
                detail: "NO serves bulletins and session reports only".to_owned(),
            }),
        }
    }
}

/// A role-generic machine, so the event loop can serve either daemon.
/// The router machine carries per-handshake DH and timing state
/// (~250 bytes), so it is boxed to keep the enum — and everything that
/// embeds it per connection — small for the common established case.
pub(crate) enum SessionSm {
    Router(Box<RouterSm>),
    No(NoSm),
}

impl SessionSm {
    pub(crate) fn awaiting_verify(&self) -> bool {
        match self {
            SessionSm::Router(sm) => sm.awaiting_verify(),
            SessionSm::No(_) => false,
        }
    }

    pub(crate) fn abort_verify(&mut self) {
        if let SessionSm::Router(sm) = self {
            sm.abort_verify();
        }
    }

    /// Whether the connection may be parked onto the slow sweep when
    /// quiet. Router connections only after the handshake completes
    /// (see [`RouterSm::established`]); NO connections always — their
    /// traffic is periodic background sync where the added park-scan
    /// latency is immaterial.
    pub(crate) fn parkable(&self) -> bool {
        match self {
            SessionSm::Router(sm) => sm.established(),
            SessionSm::No(_) => true,
        }
    }

    pub(crate) fn on_decode_error(&self) -> Step {
        match self {
            SessionSm::Router(sm) => sm.on_decode_error(),
            SessionSm::No(sm) => sm.on_decode_error(),
        }
    }

    pub(crate) fn on_message(&mut self, msg: NodeMessage, metrics: &NetMetrics) -> Step {
        match self {
            SessionSm::Router(sm) => sm.on_message(msg, metrics),
            SessionSm::No(sm) => sm.on_message(msg, metrics),
        }
    }

    pub(crate) fn on_verify(&mut self, outcome: VerifyOutcome, metrics: &NetMetrics) -> Step {
        match self {
            SessionSm::Router(sm) => sm.on_verify(outcome, metrics),
            // NO never offloads; a stray completion closes the conn.
            SessionSm::No(_) => Step::Close,
        }
    }
}

/// The role a listener serves; [`Service::new_session`] mints the
/// per-connection machine.
#[derive(Clone)]
pub(crate) enum Service {
    Router(RouterShared),
    No(NoShared),
}

impl Service {
    pub(crate) fn new_session(&self) -> SessionSm {
        match self {
            Service::Router(shared) => SessionSm::Router(Box::new(RouterSm::new(shared.clone()))),
            Service::No(shared) => SessionSm::No(NoSm::new(shared.clone())),
        }
    }
}
