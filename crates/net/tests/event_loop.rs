//! Acceptance tests for the sharded event-loop runtime (`cfg.shards >=
//! 1`): the same world, agents, and assertions as the blocking runtime —
//! handshakes and AEAD echo across shards, deferred verify replies, the
//! router-side per-leg handshake histograms, connection-cap BUSY rejects
//! serviced by the loop itself, malformed-frame parity, idle-timeout
//! eviction, and an NO daemon served by the reactor.

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use peace_net::{
    build_world, read_frame, reject_code, write_frame, ConnConfig, DaemonConfig, NetError,
    NoDaemon, NodeMessage, RouterDaemon, Transient, UserAgent, WorldSpec, DEFAULT_MAX_FRAME,
};
use peace_wire::{Decode, Encode};

fn event_cfg(shards: usize) -> DaemonConfig {
    DaemonConfig {
        conn: ConnConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            ..ConnConfig::default()
        },
        max_connections: 32,
        connect_timeout: Duration::from_secs(5),
        drain: Duration::from_secs(3),
        shards,
        ..DaemonConfig::default()
    }
}

/// Five users handshake and echo concurrently against a two-shard router
/// daemon, with the NO bulletin server also running on the reactor. The
/// router-side per-leg handshake histograms must be populated.
#[test]
fn concurrent_handshakes_and_echo_across_shards() {
    let spec = WorldSpec {
        seed: 0xE7E27,
        users: 5,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let cfg = event_cfg(2);

    let no = NoDaemon::spawn(w.no, "127.0.0.1:0", cfg).unwrap();
    let no_addr = no.addr();
    let router = w.routers.into_iter().next().unwrap();
    let daemon = RouterDaemon::spawn(router, spec.seed ^ 1, "127.0.0.1:0", cfg).unwrap();
    let addr = daemon.addr();
    daemon.refresh_lists(no_addr).expect("bootstrap list sync");

    let ok = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    for (i, user) in w.users.into_iter().enumerate() {
        let counter = Arc::clone(&ok);
        threads.push(std::thread::spawn(move || {
            let mut agent = UserAgent::new(user, 0x5EED_1000 + i as u64, event_cfg(2));
            agent.poll_bulletin(no_addr).expect("bulletin poll");
            let mut sess = agent.connect(addr).expect("handshake over event loop");
            for round in 0..3u32 {
                let payload = format!("user-{i} round-{round}");
                let echoed = sess.echo(payload.as_bytes()).expect("echo");
                assert_eq!(echoed, payload.as_bytes());
            }
            sess.close();
            counter.fetch_add(1, Ordering::SeqCst);
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(ok.load(Ordering::SeqCst), 5);

    let m = daemon.metrics();
    assert_eq!(m.handshakes_ok, 5);
    assert_eq!(m.handshakes_fail, 0);
    assert_eq!(m.handler_panics, 0);
    assert!(m.connections_accepted >= 5);

    // Satellite: the router-side per-leg handshake histograms are
    // recorded by the session machine, so the event-loop (and blocking)
    // runtime exports non-empty router-side latency legs.
    let t = daemon.telemetry();
    for leg in ["net.hs_beacon_us", "net.hs_confirm_us", "net.hs_total_us"] {
        let h = t.histograms.get(leg).unwrap_or_else(|| {
            panic!("missing router histogram {leg}");
        });
        assert_eq!(h.count, 5, "{leg} must record every handshake");
    }
    assert!(
        t.histograms["net.access_verify_us"].count >= 1,
        "verify pool records batch verification time"
    );

    // Shutdown hands the entities back: every shard and pool thread
    // joined, no Arc leaked.
    let mut router = daemon.shutdown().expect("router handed back");
    assert!(router.drain_log().len() >= 5, "sessions were logged");
    no.shutdown().expect("operator handed back");
}

/// The blocking runtime still works through the same session machines
/// (shards = 0), and the two runtimes agree on handshake metrics.
#[test]
fn blocking_runtime_parity_via_shared_session_machine() {
    let spec = WorldSpec {
        seed: 0xE7E28,
        users: 1,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let cfg = event_cfg(0); // blocking
    let no = NoDaemon::spawn(w.no, "127.0.0.1:0", cfg).unwrap();
    let daemon = RouterDaemon::spawn(
        w.routers.into_iter().next().unwrap(),
        spec.seed ^ 1,
        "127.0.0.1:0",
        cfg,
    )
    .unwrap();
    daemon.refresh_lists(no.addr()).unwrap();

    let mut agent = UserAgent::new(w.users.into_iter().next().unwrap(), 77, cfg);
    agent.poll_bulletin(no.addr()).unwrap();
    let mut sess = agent.connect(daemon.addr()).unwrap();
    assert_eq!(sess.echo(b"parity").unwrap(), b"parity");
    sess.close();

    // The per-leg histograms are recorded by the shared machine on the
    // blocking path too.
    let t = daemon.telemetry();
    for leg in ["net.hs_beacon_us", "net.hs_confirm_us", "net.hs_total_us"] {
        assert_eq!(t.histograms[leg].count, 1, "{leg} on the blocking runtime");
    }
    daemon.shutdown().unwrap();
    no.shutdown().unwrap();
}

/// A connection over the cap is serviced by the event loop itself: it
/// reads the client's first frame, writes the explicit BUSY reject, and
/// closes — no handler thread, and the client sees the same transient
/// `ConnLimit` the blocking runtime produces.
#[test]
fn over_cap_rejected_with_busy_by_the_loop() {
    let spec = WorldSpec {
        seed: 0xE7E29,
        users: 2,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let mut cfg = event_cfg(1);
    cfg.max_connections = 1;
    let mut router = w.routers.into_iter().next().unwrap();
    let now = peace_net::clock::wall_ms();
    router.update_lists(w.no.publish_crl(now), w.no.publish_url(now));
    let daemon = RouterDaemon::spawn(router, 1, "127.0.0.1:0", cfg).unwrap();
    let addr = daemon.addr();

    let mut users = w.users.into_iter();
    let mut holder = UserAgent::new(users.next().unwrap(), 21, cfg);
    let mut second = UserAgent::new(users.next().unwrap(), 22, cfg);

    let sess = holder
        .connect(addr)
        .expect("first connection holds the slot");
    let err = match second.connect(addr) {
        Ok(_) => panic!("second dial must be turned away at the cap"),
        Err(e) => e,
    };
    assert!(
        matches!(err, NetError::ConnLimit),
        "expected ConnLimit, got {err:?}"
    );
    assert!(err.is_transient(), "cap rejection is retryable");
    assert_eq!(daemon.metrics().connections_rejected, 1);

    sess.close();
    drop(holder);
    // Slot freed: the next dial succeeds.
    let deadline = Instant::now() + Duration::from_secs(5);
    while daemon.live_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let sess2 = second.connect(addr).expect("slot freed");
    sess2.close();
    daemon.shutdown().unwrap();
}

/// Malformed-frame parity with the blocking runtime: a router serves a
/// MALFORMED reject and keeps the connection open (pre-auth garbage is
/// not worth the slot); valid traffic may follow on the same socket.
#[test]
fn malformed_frame_gets_reject_and_connection_survives() {
    let spec = WorldSpec {
        seed: 0xE7E2A,
        users: 1,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let cfg = event_cfg(1);
    let mut router = w.routers.into_iter().next().unwrap();
    let now = peace_net::clock::wall_ms();
    router.update_lists(w.no.publish_crl(now), w.no.publish_url(now));
    let daemon = RouterDaemon::spawn(router, 1, "127.0.0.1:0", cfg).unwrap();

    let mut stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Garbage payload in a well-formed frame: undecodable envelope.
    write_frame(&mut stream, &[0xDE, 0xAD, 0xBE, 0xEF], DEFAULT_MAX_FRAME).unwrap();
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    match NodeMessage::from_wire(&payload).unwrap() {
        NodeMessage::Reject { code, .. } => assert_eq!(code, reject_code::MALFORMED),
        other => panic!("expected MALFORMED reject, got {other:?}"),
    }

    // The connection survived: a real message still gets served.
    let get_beacon = NodeMessage::GetBeacon.try_to_wire().unwrap();
    write_frame(&mut stream, &get_beacon, DEFAULT_MAX_FRAME).unwrap();
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(
        NodeMessage::from_wire(&payload).unwrap(),
        NodeMessage::Beacon(_)
    ));
    assert_eq!(daemon.metrics().decode_failures, 1);
    daemon.shutdown().unwrap();
}

/// Idle connections are evicted by the sweep at the configured read
/// deadline — a quiet peer cannot pin its slot forever.
#[test]
fn idle_connection_evicted_on_timeout() {
    let spec = WorldSpec {
        seed: 0xE7E2B,
        users: 1,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let mut cfg = event_cfg(1);
    cfg.conn.read_timeout = Some(Duration::from_millis(300));
    let daemon =
        RouterDaemon::spawn(w.routers.into_iter().next().unwrap(), 1, "127.0.0.1:0", cfg).unwrap();

    let mut stream = TcpStream::connect(daemon.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    while daemon.live_connections() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(daemon.live_connections(), 1);

    // Send nothing. The sweep must evict us and count the timeout.
    let deadline = Instant::now() + Duration::from_secs(5);
    while daemon.live_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(daemon.live_connections(), 0, "idle conn evicted");
    assert_eq!(daemon.metrics().timeouts, 1);

    // The socket was really closed under the client.
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "server closed");
    daemon.shutdown().unwrap();
}

/// The NO daemon runs on the reactor too: bulletins, session reports,
/// and the router's refresh path all work against a sharded NO.
#[test]
fn no_daemon_served_by_event_loop() {
    let spec = WorldSpec {
        seed: 0xE7E2C,
        users: 1,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let cfg = event_cfg(1);
    let no = NoDaemon::spawn(w.no, "127.0.0.1:0", cfg).unwrap();
    let daemon = RouterDaemon::spawn(
        w.routers.into_iter().next().unwrap(),
        spec.seed ^ 1,
        "127.0.0.1:0",
        cfg,
    )
    .unwrap();
    daemon
        .refresh_lists(no.addr())
        .expect("bulletin served by the reactor");

    let mut agent = UserAgent::new(w.users.into_iter().next().unwrap(), 31, cfg);
    agent.poll_bulletin(no.addr()).expect("user bulletin poll");
    let mut sess = agent.connect(daemon.addr()).expect("handshake");
    assert_eq!(sess.echo(b"over-reactor").unwrap(), b"over-reactor");
    sess.close();

    // Session transcripts flow router → NO across the reactor as well.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut accepted = 0;
    while accepted == 0 && Instant::now() < deadline {
        accepted = daemon.report_sessions(no.addr()).expect("report");
        if accepted == 0 {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    assert_eq!(accepted, 1, "NO accepted the session transcript");
    daemon.shutdown().unwrap();
    no.shutdown().unwrap();
}

/// A writer that floods garbage after the reject is dropped: the
/// ReplyClose path flushes the reject and closes even under the event
/// loop's non-blocking writes.
#[test]
fn unexpected_message_rejected_then_closed() {
    let spec = WorldSpec {
        seed: 0xE7E2D,
        users: 1,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let cfg = event_cfg(1);
    let daemon =
        RouterDaemon::spawn(w.routers.into_iter().next().unwrap(), 1, "127.0.0.1:0", cfg).unwrap();

    let mut stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // GetBulletin is an NO request — nonsense to a router.
    let msg = NodeMessage::GetBulletin.try_to_wire().unwrap();
    write_frame(&mut stream, &msg, DEFAULT_MAX_FRAME).unwrap();
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    match NodeMessage::from_wire(&payload).unwrap() {
        NodeMessage::Reject { code, .. } => assert_eq!(code, reject_code::MALFORMED),
        other => panic!("expected reject, got {other:?}"),
    }
    let mut buf = [0u8; 1];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "closed after reject");
    daemon.shutdown().unwrap();
}
