//! Frame-codec hardening: property tests asserting that the framing layer
//! and envelope codec treat arbitrary and adversarial bytes as clean
//! errors — never panics, never unbounded allocation, never a bogus
//! accept.

use std::io::Cursor;
use std::sync::OnceLock;

use peace_net::{build_world, WorldSpec};
use peace_net::{
    read_frame, write_frame, Bulletin, NetError, NodeMessage, DEFAULT_MAX_FRAME, FRAME_HEADER_LEN,
};
use peace_wire::{Decode, Encode};
use proptest::prelude::*;

/// A captured set of real envelopes covering every message kind that
/// carries protocol payloads (built once; group-signature setup is slow).
fn sample_envelopes() -> &'static Vec<NodeMessage> {
    static SAMPLES: OnceLock<Vec<NodeMessage>> = OnceLock::new();
    SAMPLES.get_or_init(|| {
        let mut w = build_world(&WorldSpec {
            seed: 7,
            users: 1,
            routers: 1,
        })
        .unwrap();
        let beacon = w.routers[0].beacon(10_000, &mut w.rng);
        let req = w.users[0]
            .request_access(&beacon, 10_050, &mut w.rng)
            .unwrap();
        let (confirm, _sess) = w.routers[0].process_access_request(&req, 10_100).unwrap();
        vec![
            NodeMessage::GetBulletin,
            NodeMessage::Bulletin(Bulletin {
                epoch: 3,
                crl: w.no.publish_crl(10_000),
                url: w.no.publish_url(10_000),
            }),
            NodeMessage::GetBeacon,
            NodeMessage::Beacon(Box::new(beacon)),
            NodeMessage::AccessRequest(Box::new(req)),
            NodeMessage::AccessConfirm(Box::new(confirm)),
            NodeMessage::Data(vec![0xAB; 257]),
            NodeMessage::Reject {
                code: 4,
                detail: "revoked".to_owned(),
            },
            NodeMessage::Bye,
        ]
    })
}

#[test]
fn every_kind_roundtrips_through_frame_and_envelope() {
    for msg in sample_envelopes() {
        let bytes = msg.try_to_wire().unwrap();
        let mut framed = Vec::new();
        write_frame(&mut framed, &bytes, DEFAULT_MAX_FRAME).unwrap();
        let payload = read_frame(&mut Cursor::new(&framed), DEFAULT_MAX_FRAME).unwrap();
        let back = NodeMessage::from_wire(&payload).unwrap();
        assert_eq!(&back, msg, "kind {}", msg.kind_name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary garbage never panics the envelope decoder.
    #[test]
    fn garbage_never_panics_envelope_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = NodeMessage::from_wire(&bytes);
    }

    /// Arbitrary garbage never panics the frame reader, and a declared
    /// length beyond the bound is rejected *before* allocation.
    #[test]
    fn garbage_never_panics_frame_reader(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let r = read_frame(&mut Cursor::new(&bytes), 1 << 10);
        if bytes.len() >= FRAME_HEADER_LEN {
            let declared =
                u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
            if declared > 1 << 10 {
                prop_assert_eq!(
                    r,
                    Err(NetError::FrameTooLarge {
                        declared: declared as u64,
                        max: 1 << 10,
                    })
                );
            }
        } else {
            prop_assert_eq!(r, Err(NetError::Closed));
        }
    }

    /// Truncating a valid framed envelope at any cut point yields a clean
    /// error (short header or short payload), never a panic or an accept
    /// of a different message.
    #[test]
    fn truncation_at_every_cut_is_clean(salt in any::<u64>()) {
        let msgs = sample_envelopes();
        let msg = &msgs[(salt % msgs.len() as u64) as usize];
        let bytes = msg.try_to_wire().unwrap();
        let mut framed = Vec::new();
        write_frame(&mut framed, &bytes, DEFAULT_MAX_FRAME).unwrap();
        let cut = (salt >> 8) as usize % framed.len();
        let r = read_frame(&mut Cursor::new(&framed[..cut]), DEFAULT_MAX_FRAME);
        prop_assert_eq!(r, Err(NetError::Closed));
    }

    /// Flipping any single bit of a framed envelope either still decodes
    /// to the *same kind* (a flip inside an opaque field like a ciphertext
    /// body) or fails cleanly — it never panics and never changes a
    /// message into a structurally different accepted one with version
    /// intact.
    #[test]
    fn single_bit_flips_never_panic(salt in any::<u64>()) {
        let msgs = sample_envelopes();
        let msg = &msgs[(salt % msgs.len() as u64) as usize];
        let bytes = msg.try_to_wire().unwrap();
        let bit = (salt >> 8) % (bytes.len() as u64 * 8);
        let mut mutated = bytes.clone();
        mutated[(bit / 8) as usize] ^= 1 << (bit % 8);
        let _ = NodeMessage::from_wire(&mutated);

        // And through the framing layer too.
        let mut framed = Vec::new();
        write_frame(&mut framed, &mutated, DEFAULT_MAX_FRAME).unwrap();
        let payload = read_frame(&mut Cursor::new(&framed), DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(payload, mutated);
    }

    /// A frame whose header declares more than the size bound is rejected
    /// with the declared size reported, regardless of the actual payload.
    #[test]
    fn oversize_declared_header_rejected(declared in any::<u32>()) {
        let max = 4096usize;
        let declared = declared.saturating_add(max as u32 + 1);
        let mut framed = Vec::new();
        framed.extend_from_slice(&declared.to_be_bytes());
        framed.extend_from_slice(&[0u8; 16]);
        prop_assert_eq!(
            read_frame(&mut Cursor::new(&framed), max),
            Err(NetError::FrameTooLarge {
                declared: u64::from(declared),
                max: max as u64,
            })
        );
    }

    /// Wrong protocol versions are rejected as malformed, not accepted.
    #[test]
    fn foreign_versions_rejected(v in any::<u16>()) {
        let bytes = NodeMessage::Bye.try_to_wire().unwrap();
        let mut mutated = bytes.clone();
        // Overwrite the version field; if the sampled value happens to
        // re-encode the real VERSION the bytes are unchanged and skipped.
        mutated[4..6].copy_from_slice(&v.to_be_bytes());
        if mutated[4..6] != bytes[4..6] {
            prop_assert!(NodeMessage::from_wire(&mutated).is_err());
        }
    }
}
