//! The runtime acceptance test: a full PEACE deployment on loopback —
//! one NO bulletin daemon, two mesh-router daemons, and five user agents
//! in concurrent threads — exercising bulletin polling, concurrent
//! anonymous handshakes, AEAD echo traffic, dynamic revocation with
//! propagation through list refresh + beacon re-broadcast, and graceful
//! shutdown, with zero handler panics anywhere.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use peace_net::{
    build_world, reject_code, ConnConfig, DaemonConfig, NetError, NoDaemon, RouterDaemon,
    Transient, UserAgent, WorldSpec,
};

fn test_cfg() -> DaemonConfig {
    DaemonConfig {
        conn: ConnConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            ..ConnConfig::default()
        },
        max_connections: 32,
        connect_timeout: Duration::from_secs(5),
        drain: Duration::from_secs(3),
        ..DaemonConfig::default()
    }
}

#[test]
fn full_mesh_on_loopback_with_revocation() {
    let spec = WorldSpec {
        seed: 0xB00B1E5,
        users: 5,
        routers: 2,
    };
    let w = build_world(&spec).unwrap();
    let tokens = w.tokens.clone();
    let cfg = test_cfg();

    let no = NoDaemon::spawn(w.no, "127.0.0.1:0", cfg).unwrap();
    let no_addr = no.addr();
    let mut routers = Vec::new();
    for (i, r) in w.routers.into_iter().enumerate() {
        routers
            .push(RouterDaemon::spawn(r, spec.seed ^ (i as u64 + 1), "127.0.0.1:0", cfg).unwrap());
    }
    let router_addrs: Vec<_> = routers.iter().map(|r| r.addr()).collect();

    // Bootstrap: routers sync their revocation lists from the NO bulletin
    // before serving. Provisioning-time lists are issued at t=0, and users
    // enforce `list_max_age` against the wall clock — a router that skips
    // this sync serves beacons every client rejects as stale.
    for r in &routers {
        assert_eq!(r.refresh_lists(no_addr).expect("bootstrap list sync"), 0);
    }

    // ------------------------------------------------------------------
    // Phase 1: all five users poll the bulletin and authenticate
    // concurrently — users 0,2,4 against router 0, users 1,3 against
    // router 1 — then run AEAD echo traffic on the established sessions.
    // ------------------------------------------------------------------
    let ok_sessions = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    let mut agents_back = Vec::new();
    for (i, user) in w.users.into_iter().enumerate() {
        let addr = router_addrs[i % router_addrs.len()];
        let counter = Arc::clone(&ok_sessions);
        threads.push(std::thread::spawn(move || {
            let mut agent = UserAgent::new(user, 0x5EED_0000 + i as u64, test_cfg());
            let url_version = agent.poll_bulletin(no_addr).expect("bulletin poll");
            assert_eq!(url_version, 0, "nothing revoked yet");
            let mut sess = agent.connect(addr).expect("handshake");
            for round in 0..3u32 {
                let payload = format!("user-{i} round-{round}");
                let echoed = sess.echo(payload.as_bytes()).expect("echo");
                assert_eq!(echoed, payload.as_bytes());
            }
            counter.fetch_add(1, Ordering::SeqCst);
            sess.close();
            agent
        }));
    }
    for t in threads {
        agents_back.push(t.join().expect("user thread must not panic"));
    }
    assert_eq!(ok_sessions.load(Ordering::SeqCst), 5);

    let handshakes: u64 = routers.iter().map(|r| r.metrics().handshakes_ok).sum();
    assert_eq!(handshakes, 5, "each user authenticated exactly once");

    // ------------------------------------------------------------------
    // Phase 2: NO revokes user 0 at runtime; both routers refresh their
    // lists from the bulletin; the revoked user is rejected with the
    // terminal REVOKED code while an unrevoked user still gets in — and
    // adopts the bumped URL version from the refreshed beacon.
    // ------------------------------------------------------------------
    assert!(no.revoke_user(&tokens[0]), "token must be in grt");
    for r in &routers {
        let v = r.refresh_lists(no_addr).expect("router list refresh");
        assert_eq!(v, 1, "post-revocation URL version");
    }

    let mut revoked = agents_back.remove(0); // user 0
    let err = match revoked.connect(router_addrs[0]) {
        Ok(_) => panic!("revoked user must be rejected"),
        Err(e) => e,
    };
    match &err {
        NetError::Rejected { code, .. } => assert_eq!(*code, reject_code::REVOKED),
        other => panic!("expected Rejected{{REVOKED}}, got {other:?}"),
    }
    assert!(!err.is_transient(), "revocation is terminal — no retry");

    let mut survivor = agents_back.remove(0); // user 1
    assert_eq!(survivor.user().list_versions().1, 0, "before refresh");
    let mut sess = survivor
        .connect(router_addrs[0])
        .expect("unrevoked user unaffected");
    assert_eq!(sess.echo(b"still here").unwrap(), b"still here");
    sess.close();
    assert_eq!(
        survivor.user().list_versions().1,
        1,
        "beacon refresh propagated the revocation to the client"
    );

    // ------------------------------------------------------------------
    // Phase 3: teardown. No handler panicked anywhere, the routers saw
    // exactly one failed handshake (the revoked attempt), and shutdown
    // returns the entities with their audit logs intact.
    // ------------------------------------------------------------------
    assert_eq!(no.metrics().handler_panics, 0);
    let fails: u64 = routers.iter().map(|r| r.metrics().handshakes_fail).sum();
    assert_eq!(fails, 1, "only the revoked user failed");
    for r in &routers {
        assert_eq!(r.metrics().handler_panics, 0);
        assert_eq!(r.metrics().decode_failures, 0);
    }

    let mut sessions_logged = 0;
    for r in routers {
        let mut entity = r.shutdown().expect("router shutdown");
        sessions_logged += entity.drain_log().len();
    }
    assert_eq!(sessions_logged, 6, "5 initial + 1 survivor session logged");
    let operator = no.shutdown().expect("NO shutdown");
    assert_eq!(operator.revoked_member_count(), 1);
}

#[test]
fn connection_limit_and_oversize_frames_policed() {
    let spec = WorldSpec {
        seed: 77,
        users: 1,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let mut cfg = test_cfg();
    cfg.max_connections = 1;
    cfg.conn.max_frame = 1 << 16;
    let mut router = w.routers.into_iter().next().unwrap();
    // No NO daemon in this test: install wall-clock-fresh lists directly.
    let now = peace_net::clock::wall_ms();
    router.update_lists(w.no.publish_crl(now), w.no.publish_url(now));
    let daemon = RouterDaemon::spawn(router, 1, "127.0.0.1:0", cfg).unwrap();
    let addr = daemon.addr();

    // Hold one slot open with an established session.
    let mut agent = UserAgent::new(w.users.into_iter().next().unwrap(), 9, cfg);
    let sess = agent.connect(addr).expect("first connection");

    // The second connection is turned away at accept with an explicit
    // BUSY reject frame, then closed.
    let refused = std::net::TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let mut probe = refused;
    use std::io::Read;
    let payload = peace_net::read_frame(&mut probe, peace_net::DEFAULT_MAX_FRAME)
        .expect("over-limit connection receives a reject frame");
    use peace_wire::Decode as _;
    match peace_net::NodeMessage::from_wire(&payload).unwrap() {
        peace_net::NodeMessage::Reject { code, .. } => assert_eq!(code, reject_code::BUSY),
        other => panic!("expected BUSY reject, got {other:?}"),
    }
    let mut buf = [0u8; 1];
    assert_eq!(
        probe.read(&mut buf).unwrap_or(0),
        0,
        "over-limit connection closed after the reject"
    );
    assert!(daemon.metrics().connections_rejected >= 1);

    sess.close();
    // Wait for the handler to release the slot, then an oversize frame on
    // a fresh connection is rejected at the header, before any allocation
    // or dispatch.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while daemon.live_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(daemon.live_connections(), 0, "slot released after close");
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    use std::io::Write;
    let huge = (u32::MAX).to_be_bytes();
    stream.write_all(&huge).unwrap();
    stream.write_all(&[0u8; 64]).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let mut end = Vec::new();
    let _ = stream.read_to_end(&mut end); // daemon drops the connection
    assert_eq!(daemon.metrics().handler_panics, 0);
    assert!(daemon.metrics().oversize_rejected >= 1);
    daemon.shutdown().unwrap();
}
