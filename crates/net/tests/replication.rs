//! Federated-NO chaos acceptance test: three NO replicas gossip
//! checkpointed ledger ranges; routers report transcripts through a
//! health-tracked replica set. One replica is killed mid-run — zero
//! transcripts may be lost on the survivors, the routers must fail over,
//! and the rejoined replica must catch up to a byte-identical merged
//! view, with every shard chain and cross-replica checkpoint verifying
//! offline.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use peace_ledger::{verify_replica, LedgerConfig, LedgerRecord, ReplicatedLedger, SyncPolicy};
use peace_net::{
    build_world, ConnConfig, DaemonConfig, NoDaemon, PeerKeyResolver, RouterDaemon, UserAgent,
    WorldSpec,
};
use peace_protocol::{ReplicaSet, RetryPolicy};

fn test_cfg() -> DaemonConfig {
    DaemonConfig {
        conn: ConnConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            ..ConnConfig::default()
        },
        max_connections: 32,
        connect_timeout: Duration::from_secs(5),
        drain: Duration::from_secs(3),
        ..DaemonConfig::default()
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn ledger_cfg() -> LedgerConfig {
    LedgerConfig {
        sync: SyncPolicy::OnFlush,
        ..LedgerConfig::default()
    }
}

const SPEC: WorldSpec = WorldSpec {
    seed: 0xFE0,
    users: 4,
    routers: 2,
};

/// Spawns NO replica `idx` over `dir`: the operator is replayed from the
/// shared world seed (all replicas hold the same NSK — the paper's single
/// logical NO, made crash-tolerant), the replica store is opened with
/// O(tail) resume, and federation is enabled.
fn spawn_replica(idx: usize, dir: &Path, resolve: PeerKeyResolver) -> NoDaemon {
    let no = build_world(&SPEC).unwrap().no;
    let id = format!("NO-{idx}");
    let (replica, _) = ReplicatedLedger::open(dir, &id, ledger_cfg(), &|s| resolve(s)).unwrap();
    let daemon = NoDaemon::spawn(no, "127.0.0.1:0", test_cfg()).unwrap();
    daemon.attach_replica(replica, resolve);
    daemon
}

fn merged_digest(d: &NoDaemon) -> [u8; 32] {
    d.with_replica(|rl| rl.merged_digest().unwrap()).unwrap()
}

fn access_count(d: &NoDaemon) -> usize {
    d.with_replica(|rl| {
        rl.merged()
            .unwrap()
            .iter()
            .filter(|m| matches!(m.entry.record, LedgerRecord::Access(_)))
            .count()
    })
    .unwrap()
}

#[test]
fn kill_one_of_three_replicas_loses_nothing() {
    let w = build_world(&SPEC).unwrap();
    let npk = *w.no.npk();
    let resolve: PeerKeyResolver =
        Arc::new(move |s: &str| (s == "NO" || s.starts_with("NO-")).then_some(npk));
    let cfg = test_cfg();

    let dirs: Vec<PathBuf> = (0..3).map(|i| tmpdir(&format!("fed-no-{i}"))).collect();
    let mut nos: Vec<Option<NoDaemon>> = dirs
        .iter()
        .enumerate()
        .map(|(i, d)| Some(spawn_replica(i, d, Arc::clone(&resolve))))
        .collect();
    let addrs: Vec<_> = nos.iter().map(|d| d.as_ref().unwrap().addr()).collect();

    // Routers report through a replica set: NO-0 is primary.
    let retry = RetryPolicy {
        base_delay: 10,
        max_delay: 100,
        max_attempts: 4,
    };
    let mut set = ReplicaSet::new(addrs.clone(), retry);

    let mut router_daemons = Vec::new();
    for (i, r) in w.routers.into_iter().enumerate() {
        router_daemons.push(RouterDaemon::spawn(r, 0xAB + i as u64, "127.0.0.1:0", cfg).unwrap());
    }
    for r in &router_daemons {
        r.refresh_lists(addrs[0]).expect("bootstrap list sync");
    }

    // Phase 1: four sessions land on the primary.
    let mut agents = Vec::new();
    for (i, user) in w.users.into_iter().enumerate() {
        let daemon = &router_daemons[i % 2];
        let mut agent = UserAgent::new(user, 0x5EED + i as u64, cfg);
        agent.poll_bulletin(addrs[0]).expect("bulletin poll");
        let mut sess = agent.connect(daemon.addr()).expect("handshake");
        assert_eq!(sess.echo(b"fed").unwrap(), b"fed");
        sess.close();
        agents.push(agent);
    }
    let reported: u32 = router_daemons
        .iter()
        .map(|r| r.report_sessions_failover(&mut set).expect("report"))
        .sum();
    assert_eq!(reported, 4);
    assert_eq!(
        router_daemons[0].metrics().failovers,
        0,
        "primary alive: no failover yet"
    );

    // Gossip: the secondaries pull the primary's checkpointed shard.
    for i in [1, 2] {
        let pulled = nos[i].as_ref().unwrap().sync_once(addrs[0]).expect("sync");
        assert!(pulled > 0, "replica {i} ingested the primary's records");
    }
    assert_eq!(access_count(nos[1].as_ref().unwrap()), 4);
    assert_eq!(
        merged_digest(nos[1].as_ref().unwrap()),
        merged_digest(nos[2].as_ref().unwrap()),
        "secondaries converge"
    );

    // Phase 2: kill the primary mid-run (its disk state stays put).
    nos[0].take().unwrap().shutdown().unwrap();

    // Two users reconnect; the routers' reports must fail over.
    for (i, agent) in agents.iter_mut().take(2).enumerate() {
        let mut sess = agent
            .connect(router_daemons[i % 2].addr())
            .expect("reconnect");
        assert_eq!(sess.echo(b"survivor").unwrap(), b"survivor");
        sess.close();
    }
    let reported: u32 = router_daemons
        .iter()
        .map(|r| {
            r.report_sessions_failover(&mut set)
                .expect("failover report")
        })
        .sum();
    assert_eq!(reported, 2, "no transcript lost with the primary dead");
    let failovers: u64 = router_daemons.iter().map(|r| r.metrics().failovers).sum();
    assert!(failovers >= 1, "success came from a backup replica");

    // The survivors converge on everything: NO-2 pulls the failover
    // batch from whichever survivor took it.
    let n1 = nos[1].as_ref().unwrap();
    let n2 = nos[2].as_ref().unwrap();
    let _ = n2.sync_once(n1.addr()).expect("survivor gossip");
    let _ = n1.sync_once(n2.addr()).expect("survivor gossip back");
    assert_eq!(access_count(n1), 6, "4 original + 2 failover sessions");
    assert_eq!(merged_digest(n1), merged_digest(n2));

    // Phase 3: the killed replica rejoins from its old directory (O(tail)
    // resume, then idempotent catch-up) and converges byte-identically.
    let rejoined = spawn_replica(0, &dirs[0], Arc::clone(&resolve));
    let caught_up = rejoined.sync_once(n1.addr()).expect("catch-up");
    assert!(caught_up > 0, "rejoined replica pulled what it missed");
    // A second round is a no-op: catch-up is idempotent.
    assert_eq!(rejoined.sync_once(n1.addr()).unwrap(), 0);
    assert_eq!(access_count(&rejoined), 6);
    assert_eq!(merged_digest(&rejoined), merged_digest(n1));
    assert_eq!(merged_digest(&rejoined), merged_digest(n2));

    // Teardown, then offline cross-replica verification: every shard
    // chain and every pulled checkpoint signature verifies in every
    // replica directory.
    for r in router_daemons {
        r.shutdown().unwrap();
    }
    rejoined.shutdown().unwrap();
    nos[1].take().unwrap().shutdown().unwrap();
    nos[2].take().unwrap().shutdown().unwrap();
    for dir in &dirs {
        let report = verify_replica(dir, &|s| resolve(s)).unwrap();
        assert!(
            report.checkpoints_verified() >= 2,
            "{dir:?}: cross-replica checkpoints verify"
        );
        assert!(report.records() >= 6, "{dir:?}: transcripts present");
    }
}
