//! Fragmentation properties of the shared incremental frame decoder:
//! no matter how the kernel splits the stream — 1-byte reads, a length
//! prefix cut mid-header, several frames coalesced into one read — the
//! decoded frames are byte-identical to whole-frame delivery and to the
//! one-shot [`read_frame`] reader. Both runtimes (blocking connection
//! and sharded event loop) sit on this decoder, so these properties are
//! what makes their framing behavior provably the same.

use std::io::Cursor;

use peace_net::{read_frame, write_frame, FrameDecoder, NodeMessage, DEFAULT_MAX_FRAME};
use peace_wire::Encode;
use proptest::prelude::*;

/// Decodes `wire` by feeding the decoder `widths`-sized fragments
/// (cycled), pulling every completed frame after each feed.
fn decode_fragmented(wire: &[u8], widths: &[usize]) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
    let mut got = Vec::new();
    let mut off = 0;
    let mut wi = 0;
    while off < wire.len() {
        let w = widths[wi % widths.len()].max(1);
        wi += 1;
        let end = (off + w).min(wire.len());
        dec.feed(&wire[off..end]);
        off = end;
        while let Some(f) = dec.next_frame().expect("valid stream") {
            got.push(f);
        }
    }
    assert_eq!(dec.buffered(), 0, "no residue after a whole stream");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary payload sequences under arbitrary fragment widths decode
    /// to exactly the written payloads — matching a single coalesced feed
    /// and the one-shot reader byte for byte.
    #[test]
    fn arbitrary_fragmentation_matches_whole_frame_delivery(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..8),
        widths in proptest::collection::vec(1usize..64, 1..32),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p, DEFAULT_MAX_FRAME).unwrap();
        }

        // Arbitrary fragment widths (can split the length prefix).
        let fragmented = decode_fragmented(&wire, &widths);
        prop_assert_eq!(&fragmented, &payloads);

        // Worst case: one byte at a time.
        let byte_by_byte = decode_fragmented(&wire, &[1]);
        prop_assert_eq!(&byte_by_byte, &payloads);

        // Best case: every frame coalesced into one feed.
        let coalesced = decode_fragmented(&wire, &[wire.len()]);
        prop_assert_eq!(&coalesced, &payloads);

        // And the one-shot blocking reader agrees.
        let mut cur = Cursor::new(&wire);
        for p in &payloads {
            prop_assert_eq!(&read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap(), p);
        }
    }

    /// Real protocol envelopes survive arbitrary fragmentation: frames
    /// re-decode byte-identically, so the envelope layer above sees the
    /// same payloads either way.
    #[test]
    fn envelopes_survive_fragmentation(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        code in any::<u16>(),
        widths in proptest::collection::vec(1usize..16, 1..16),
    ) {
        let msgs = [
            NodeMessage::GetBulletin,
            NodeMessage::GetBeacon,
            NodeMessage::Data(data),
            NodeMessage::Reject { code, detail: "detail".to_owned() },
            NodeMessage::Bye,
        ];
        let mut wire = Vec::new();
        let mut payloads = Vec::new();
        for m in &msgs {
            let bytes = m.try_to_wire().unwrap();
            write_frame(&mut wire, &bytes, DEFAULT_MAX_FRAME).unwrap();
            payloads.push(bytes);
        }
        let got = decode_fragmented(&wire, &widths);
        prop_assert_eq!(got, payloads);
    }

    /// An oversized declared length poisons the decoder at the exact
    /// frame where the one-shot reader fails, no matter where the feeds
    /// split — and every frame before it is still delivered.
    #[test]
    fn oversize_mid_stream_poisons_at_same_point(
        good in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 0..4),
        widths in proptest::collection::vec(1usize..8, 1..8),
    ) {
        let max = 64usize;
        let mut wire = Vec::new();
        for p in &good {
            write_frame(&mut wire, p, max).unwrap();
        }
        // A frame declaring max+1 bytes: hostile.
        wire.extend_from_slice(&((max as u32) + 1).to_be_bytes());
        wire.extend_from_slice(&[0xEE; 8]);

        let mut dec = FrameDecoder::new(max);
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut err = None;
        let mut off = 0;
        let mut wi = 0;
        'outer: while off < wire.len() {
            let w = widths[wi % widths.len()];
            wi += 1;
            let end = (off + w).min(wire.len());
            dec.feed(&wire[off..end]);
            off = end;
            loop {
                match dec.next_frame() {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => break,
                    Err(e) => {
                        err = Some(e);
                        break 'outer;
                    }
                }
            }
        }
        prop_assert_eq!(&got, &good, "frames before the bad one all delivered");
        prop_assert!(err.is_some(), "oversized frame must fail");
        // Poisoned forever after: the stream has no resync point.
        dec.feed(&[0u8; 16]);
        prop_assert!(dec.next_frame().is_err());
    }
}
