//! Kill-recover acceptance test for the accountability ledger: a loopback
//! deployment writes session records through the NO daemon's ledger, the
//! process state is dropped mid-run with a torn half-frame on disk, and a
//! fresh daemon recovers the ledger, passes offline chain verification,
//! and batch-audits every session back to the correct user group.
//!
//! Two groups are enrolled (unlike [`peace_net::build_world`]'s single
//! group) so the attribution sweep has something to distinguish: group-A
//! users authenticate through `MR-0`, group-B users through `MR-1`, and
//! every resolved finding must name the group matching the reporting
//! router.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use peace_ledger::{
    attribute_sweep, audit_sweep, verify_chain, Ledger, LedgerConfig, LedgerQuery, LedgerRecord,
    RecordKind, SyncPolicy,
};
use peace_net::{ConnConfig, DaemonConfig, NoDaemon, RouterDaemon, UserAgent};
use peace_protocol::entities::{GroupManager, MeshRouter, NetworkOperator, Ttp, UserClient};
use peace_protocol::ids::{GroupId, UserId};
use peace_protocol::ProtocolConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_cfg() -> DaemonConfig {
    DaemonConfig {
        conn: ConnConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            ..ConnConfig::default()
        },
        max_connections: 32,
        connect_timeout: Duration::from_secs(5),
        drain: Duration::from_secs(3),
        ..DaemonConfig::default()
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

struct TwoGroupWorld {
    no: NetworkOperator,
    routers: Vec<MeshRouter>,
    /// `(user, its group)` in enrollment order: a-0, a-1, b-0, b-1.
    users: Vec<(UserClient, GroupId)>,
    tokens: Vec<peace_groupsig::RevocationToken>,
    rng: StdRng,
}

/// The setup ceremony with TWO user groups of two members each, and one
/// router per group.
fn build_two_groups(seed: u64) -> TwoGroupWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut no = NetworkOperator::new(ProtocolConfig::default(), &mut rng);
    let mut ttp = Ttp::new();
    let mut users = Vec::new();
    let mut tokens = Vec::new();
    for (tag, name) in [("a", "metro-a"), ("b", "metro-b")] {
        let gid = no.register_group(name, &mut rng);
        let (gm_bundle, ttp_bundle) = no.issue_shares(gid, 2, &mut rng).unwrap();
        let mut gm = GroupManager::new(gid);
        gm.receive_bundle(&gm_bundle, no.npk()).unwrap();
        ttp.receive_bundle(&ttp_bundle, no.npk()).unwrap();
        for n in 0..2 {
            let uid = UserId(format!("{tag}-{n}"));
            let mut user =
                UserClient::new(uid.clone(), *no.gpk(), *no.npk(), *no.config(), &mut rng);
            let assignment = gm.assign(&uid).unwrap();
            let delivery = ttp.deliver(assignment.index, &uid).unwrap();
            let receipt = user.enroll(&assignment, &delivery).unwrap();
            gm.store_receipt(&uid, receipt);
            tokens.push(user.active_credential().unwrap().key.revocation_token());
            users.push((user, gid));
        }
    }
    let routers = (0..2)
        .map(|n| no.provision_router(&format!("MR-{n}"), u64::MAX / 2, &mut rng))
        .collect();
    TwoGroupWorld {
        no,
        routers,
        users,
        tokens,
        rng,
    }
}

/// Path of the highest-numbered (active) segment file.
fn last_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "pls"))
        .collect();
    segs.sort();
    segs.pop().expect("ledger has at least one segment")
}

#[test]
fn kill_recover_verify_and_batch_audit() {
    let mut w = build_two_groups(0xACC7_0B1E);
    let gid_a = w.users[0].1;
    let gid_b = w.users[2].1;
    assert_ne!(gid_a, gid_b);
    let npk = *w.no.npk();
    let router_keys: Vec<(String, peace_ecdsa::VerifyingKey)> = w
        .routers
        .iter()
        .map(|r| (r.id().0.clone(), r.cert().public_key))
        .collect();
    let resolver = |signer: &str| {
        if signer == "NO" {
            return Some(npk);
        }
        router_keys
            .iter()
            .find(|(name, _)| name == signer)
            .map(|(_, k)| *k)
    };
    let cfg = test_cfg();
    let ledger_dir = tmpdir("ledger-kill-recover");

    // ------------------------------------------------------------------
    // Phase 1: live deployment. NO daemon owns the ledger; each user
    // authenticates through its group's router; routers report their
    // transcripts to NO over the wire.
    // ------------------------------------------------------------------
    let (ledger, report) = Ledger::open(
        &ledger_dir,
        LedgerConfig {
            sync: SyncPolicy::Always,
            ..LedgerConfig::default()
        },
    )
    .unwrap();
    assert!(report.tail_flaw.is_none());
    let no_daemon = NoDaemon::spawn(w.no, "127.0.0.1:0", cfg).unwrap();
    no_daemon.attach_ledger(ledger);
    let no_addr = no_daemon.addr();

    let mut router_daemons = Vec::new();
    for (i, r) in w.routers.into_iter().enumerate() {
        router_daemons
            .push(RouterDaemon::spawn(r, 0xD0_0D + i as u64, "127.0.0.1:0", cfg).unwrap());
    }
    for r in &router_daemons {
        r.refresh_lists(no_addr).expect("bootstrap list sync");
    }

    let mut agents = Vec::new();
    for (i, (user, _gid)) in w.users.into_iter().enumerate() {
        // Group A (users 0,1) through MR-0; group B (users 2,3) through MR-1.
        let daemon = &router_daemons[i / 2];
        let mut agent = UserAgent::new(user, 0x5EED + i as u64, cfg);
        agent.poll_bulletin(no_addr).expect("bulletin poll");
        let mut sess = agent.connect(daemon.addr()).expect("handshake");
        assert_eq!(sess.echo(b"hello ledger").unwrap(), b"hello ledger");
        sess.close();
        agents.push(agent);
    }
    let reported: u32 = router_daemons
        .iter()
        .map(|r| r.report_sessions(no_addr).expect("session report"))
        .sum();
    assert_eq!(reported, 4, "every transcript accepted by NO");
    // A duplicate report is idempotent: nothing to drain, nothing re-accepted.
    assert_eq!(router_daemons[0].report_sessions(no_addr).unwrap(), 0);

    // Runtime revocation + an epoch rollover also land in the ledger, and
    // the rollover forces the later batch audit through `gpk_history`.
    assert!(no_daemon.revoke_user(&w.tokens[3]), "b-1 revoked");
    let epoch = no_daemon.rotate_epoch(&mut w.rng);
    assert_eq!(epoch, 1);
    let ck = no_daemon
        .checkpoint_now()
        .expect("ledger attached")
        .expect("checkpoint signs");
    assert_eq!(ck.seq, 6, "4 access + revocation + rollover");

    // ------------------------------------------------------------------
    // Phase 2: kill. Drop the daemons, then fake the crash artifact a
    // mid-write power cut would leave: a half-written frame (its header
    // promises 64 payload bytes; only 5 made it to disk).
    // ------------------------------------------------------------------
    let mut routers_back = Vec::new();
    for r in router_daemons {
        routers_back.push(r.shutdown().unwrap());
    }
    drop(no_daemon.detach_ledger());
    let operator = no_daemon.shutdown().unwrap();

    let seg = last_segment(&ledger_dir);
    let mut bytes = fs::read(&seg).unwrap();
    let intact = bytes.len();
    bytes.extend_from_slice(&64u32.to_be_bytes());
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x05, 0x01, 0x02]);
    let torn = bytes.len() - intact;
    fs::write(&seg, &bytes).unwrap();

    // ------------------------------------------------------------------
    // Phase 3: recover. A fresh daemon reopens the ledger, sheds exactly
    // the torn bytes, and keeps serving: one more session flows through
    // the recovered chain.
    // ------------------------------------------------------------------
    let (ledger, report) = Ledger::open(&ledger_dir, LedgerConfig::default()).unwrap();
    assert!(report.tail_flaw.is_some(), "torn tail detected");
    assert_eq!(report.torn_bytes, torn as u64);
    assert_eq!(ledger.len(), 7, "every completed record survived");

    let no_daemon = NoDaemon::spawn(operator, "127.0.0.1:0", cfg).unwrap();
    no_daemon.attach_ledger(ledger);
    let no_addr = no_daemon.addr();
    let router0 = RouterDaemon::spawn(routers_back.remove(0), 0xF00D, "127.0.0.1:0", cfg).unwrap();
    router0.refresh_lists(no_addr).expect("post-recovery sync");
    let mut sess = agents[0].connect(router0.addr()).expect("a-0 reconnects");
    assert_eq!(sess.echo(b"back online").unwrap(), b"back online");
    sess.close();
    assert_eq!(router0.report_sessions(no_addr).unwrap(), 1);
    router0.shutdown().unwrap();

    let mut ledger = no_daemon.detach_ledger().expect("still attached");
    let operator = no_daemon.shutdown().unwrap();
    assert_eq!(ledger.len(), 8, "recovered chain kept appending");

    // ------------------------------------------------------------------
    // Phase 4: offline verification + the batch Open/Audit sweep. Every
    // session resolves — including the revoked user's and those signed
    // under the rotated-away gpk — to the group its router implies.
    // ------------------------------------------------------------------
    let outcome = audit_sweep(&operator, &ledger, 0, u64::MAX).unwrap();
    assert_eq!(outcome.examined, 5);
    assert_eq!(outcome.resolved.len(), 5, "no session escapes the audit");
    assert!(outcome.unresolved.is_empty());
    for (seq, finding) in &outcome.resolved {
        let entry = ledger.get(*seq).unwrap().expect("resolved seq exists");
        let LedgerRecord::Access(access) = &entry.record else {
            panic!("sweep resolved a non-access record at seq {seq}");
        };
        let expect = if access.router == "MR-0" {
            gid_a
        } else {
            gid_b
        };
        assert_eq!(
            finding.group, expect,
            "session at seq {seq} (via {}) attributed to the wrong group",
            access.router
        );
    }

    let appended = attribute_sweep(&mut ledger, &outcome, 9_000).unwrap();
    assert_eq!(appended, 5);
    ledger
        .checkpoint(operator.signing_key(), "NO", 9_001)
        .unwrap();

    // Attribution is persistent: a second sweep finds nothing to do.
    let again = audit_sweep(&operator, &ledger, 0, u64::MAX).unwrap();
    assert_eq!(again.examined, 0, "attributed sessions are not re-opened");

    // Group-indexed queries expose the post-audit boundary: the access
    // records now attributed to each group — three group-A sessions (two
    // pre-crash + the reconnect), two group-B — and name no user.
    let by_a = ledger
        .query(&LedgerQuery {
            group: Some(gid_a.0),
            ..LedgerQuery::default()
        })
        .unwrap();
    let by_b = ledger
        .query(&LedgerQuery {
            group: Some(gid_b.0),
            ..LedgerQuery::default()
        })
        .unwrap();
    assert_eq!((by_a.len(), by_b.len()), (3, 2));
    for (entries, router) in [(&by_a, "MR-0"), (&by_b, "MR-1")] {
        for e in entries {
            assert_eq!(e.record.kind(), RecordKind::Access);
            let LedgerRecord::Access(a) = &e.record else {
                unreachable!()
            };
            assert_eq!(a.router, router);
        }
    }

    // The full chain — pre-crash records, recovery, post-recovery appends,
    // attributions — verifies offline against the ceremony's public keys.
    drop(ledger);
    let chain = verify_chain(&ledger_dir, resolver).unwrap();
    assert_eq!(chain.records, 14, "8 + 5 attributions + final checkpoint");
    assert_eq!(chain.checkpoints_verified, 2);
    assert!(chain.anchored, "final checkpoint anchors the head");
    assert_eq!(chain.torn_bytes, 0, "recovery already shed the torn tail");
}
