//! Beacon/bulletin freshness over the wire: a user agent polling a
//! bulletin server must reject stale, version-regressing, or forged
//! revocation lists — otherwise a phishing "NO" (§V.A) could serve a
//! pre-revocation URL and keep a revoked credential alive.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use peace_net::{
    build_world, clock::wall_ms, Bulletin, ConnConfig, Connection, DaemonConfig, NetError,
    NetMetrics, NoDaemon, NodeMessage, UserAgent, WorldSpec,
};
use peace_protocol::ProtocolError;

/// A hostile bulletin server: answers every `GetBulletin` with the same
/// canned bulletin, whatever its age or version.
fn spawn_canned_server(bulletin: Bulletin) -> (SocketAddr, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let t = std::thread::spawn(move || {
        // Serve a handful of connections, then exit with the test.
        for _ in 0..8 {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let metrics = Arc::new(NetMetrics::default());
            let cfg = ConnConfig {
                read_timeout: Some(Duration::from_secs(2)),
                ..ConnConfig::default()
            };
            let Ok(mut conn) = Connection::new(stream, cfg, metrics) else {
                continue;
            };
            while let Ok(msg) = conn.recv() {
                match msg {
                    NodeMessage::GetBulletin => {
                        if conn.send(&NodeMessage::Bulletin(bulletin.clone())).is_err() {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
    });
    (addr, t)
}

fn agent_cfg() -> DaemonConfig {
    DaemonConfig {
        conn: ConnConfig {
            read_timeout: Some(Duration::from_secs(3)),
            ..ConnConfig::default()
        },
        ..DaemonConfig::default()
    }
}

#[test]
fn stale_bulletin_rejected_by_max_age() {
    let w = build_world(&WorldSpec {
        seed: 21,
        users: 1,
        routers: 0,
    })
    .unwrap();
    let max_age = w.no.config().list_max_age;
    let old = wall_ms().saturating_sub(max_age + 10_000);
    let stale = Bulletin {
        epoch: 0,
        crl: w.no.publish_crl(old),
        url: w.no.publish_url(old),
    };
    let (addr, server) = spawn_canned_server(stale);

    let mut agent = UserAgent::new(w.users.into_iter().next().unwrap(), 5, agent_cfg());
    assert_eq!(
        agent.poll_bulletin(addr),
        Err(NetError::Protocol(ProtocolError::StaleCrl))
    );
    assert!(agent.user().current_url().is_none(), "nothing adopted");
    drop(server);
}

#[test]
fn version_regressing_bulletin_rejected_and_revocation_sticks() {
    let spec = WorldSpec {
        seed: 22,
        users: 2,
        routers: 0,
    };
    let w = build_world(&spec).unwrap();
    let victim_token = w.tokens[1];

    // The phishing server captured a *freshly timestamped* pre-revocation
    // bulletin (version 0, empty URL).
    let pre_revocation = Bulletin {
        epoch: 0,
        crl: w.no.publish_crl(wall_ms()),
        url: w.no.publish_url(wall_ms()),
    };
    assert_eq!(pre_revocation.url.version, 0);
    let (phish_addr, phish) = spawn_canned_server(pre_revocation);

    // The genuine NO revokes user 1 and serves the bumped URL.
    let no = NoDaemon::spawn(w.no, "127.0.0.1:0", agent_cfg()).unwrap();
    assert!(no.revoke_user(&victim_token));

    let mut agent = UserAgent::new(w.users.into_iter().next().unwrap(), 6, agent_cfg());
    assert_eq!(agent.poll_bulletin(no.addr()).unwrap(), 1);
    assert_eq!(agent.user().current_url().unwrap().tokens.len(), 1);

    // The phishing replay is fresh by timestamp but regresses the version:
    // rejected, and the adopted v1 URL stays in force.
    assert_eq!(
        agent.poll_bulletin(phish_addr),
        Err(NetError::Protocol(ProtocolError::StaleUrl))
    );
    assert_eq!(agent.user().list_versions().1, 1);
    assert_eq!(
        agent.user().current_url().unwrap().tokens.len(),
        1,
        "revocation cannot be rolled back by a replayed bulletin"
    );

    drop(phish);
    no.shutdown().unwrap();
}

#[test]
fn forged_bulletin_rejected_by_signature() {
    let w = build_world(&WorldSpec {
        seed: 23,
        users: 1,
        routers: 0,
    })
    .unwrap();
    // An impostor operator with its own keys signs plausible-looking,
    // perfectly fresh lists.
    let impostor = build_world(&WorldSpec {
        seed: 24,
        users: 0,
        routers: 0,
    })
    .unwrap();
    let forged = Bulletin {
        epoch: 0,
        crl: impostor.no.publish_crl(wall_ms()),
        url: impostor.no.publish_url(wall_ms()),
    };
    let (addr, server) = spawn_canned_server(forged);

    let mut agent = UserAgent::new(w.users.into_iter().next().unwrap(), 7, agent_cfg());
    assert_eq!(
        agent.poll_bulletin(addr),
        Err(NetError::Protocol(ProtocolError::BadCrlSignature))
    );
    assert!(agent.user().current_url().is_none());
    drop(server);
}
