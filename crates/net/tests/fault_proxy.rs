//! Adversarial-channel regression: the PR 2 chaos suite's claims —
//! handshakes converge under drops/corruption via retry, and no fault
//! pattern panics the stack — re-validated over real TCP through the
//! frame-aware fault proxy.

use std::time::Duration;

use peace_net::{
    build_world, clock::wall_ms, ConnConfig, DaemonConfig, FaultProxy, NetError, NoDaemon,
    ProxyConfig, RouterDaemon, Transient, UserAgent, WorldSpec,
};
use peace_protocol::{FaultPlan, RetryPolicy};

fn fast_cfg() -> DaemonConfig {
    DaemonConfig {
        conn: ConnConfig {
            // Short read deadline so dropped frames surface as quick
            // timeouts instead of stalling each retry for seconds.
            read_timeout: Some(Duration::from_millis(400)),
            write_timeout: Some(Duration::from_millis(400)),
            ..ConnConfig::default()
        },
        max_connections: 16,
        connect_timeout: Duration::from_secs(2),
        drain: Duration::from_secs(2),
        ..DaemonConfig::default()
    }
}

fn spawn_router(seed: u64) -> (RouterDaemon, UserAgent) {
    let w = build_world(&WorldSpec {
        seed,
        users: 1,
        routers: 1,
    })
    .unwrap();
    let mut router = w.routers.into_iter().next().unwrap();
    let now = wall_ms();
    router.update_lists(w.no.publish_crl(now), w.no.publish_url(now));
    let daemon = RouterDaemon::spawn(router, seed ^ 0xDAE, "127.0.0.1:0", fast_cfg()).unwrap();
    let agent = UserAgent::new(
        w.users.into_iter().next().unwrap(),
        seed ^ 0xA6E,
        fast_cfg(),
    );
    (daemon, agent)
}

#[test]
fn handshake_converges_through_drops_and_bitflips() {
    let (daemon, mut agent) = spawn_router(0xFA117);
    let mut proxy = FaultProxy::spawn(
        daemon.addr(),
        ProxyConfig {
            plan: FaultPlan {
                drop_prob: 0.25,
                bit_flip_prob: 0.12,
                truncate_prob: 0.08,
                ..FaultPlan::NONE
            },
            seed: 0xBADCAB1E,
            ..ProxyConfig::default()
        },
    )
    .unwrap();

    let policy = RetryPolicy {
        base_delay: 10,
        max_delay: 80,
        max_attempts: 40,
    };
    let mut sess = agent
        .connect_with_retry(proxy.addr(), &policy)
        .expect("handshake must converge under a lossy channel");

    // Data traffic through the same hostile proxy: a mangled record kills
    // the strict in-order AEAD session, so echo until one round survives,
    // re-handshaking (fresh session) whenever the channel eats one.
    let mut echoed = false;
    for round in 0..40u32 {
        match sess.echo(format!("round-{round}").as_bytes()) {
            Ok(back) => {
                assert_eq!(back, format!("round-{round}").as_bytes());
                echoed = true;
                break;
            }
            Err(e) => {
                assert!(e.is_transient(), "only transient failures expected: {e:?}");
                sess = match agent.connect_with_retry(proxy.addr(), &policy) {
                    Ok(s) => s,
                    Err(e) => panic!("re-handshake failed to converge: {e:?}"),
                };
            }
        }
    }
    assert!(echoed, "an echo round must eventually survive the channel");

    // The channel really was hostile, and nothing panicked anywhere.
    assert!(proxy.stats().total_faults() > 0, "plan must have fired");
    assert_eq!(daemon.metrics().handler_panics, 0);
    assert_eq!(agent.metrics().handler_panics, 0);
    assert!(
        agent.metrics().handshakes_ok >= 1,
        "at least the converged handshake"
    );

    proxy.shutdown();
    daemon.shutdown().unwrap();
}

/// Retries a delta refresh through a hostile channel until it lands; only
/// transient failures (timeouts, mangled frames) are tolerated — a
/// signature or chain error would fail the test immediately.
fn refresh_delta_with_retry(daemon: &RouterDaemon, addr: std::net::SocketAddr) -> u64 {
    for _ in 0..60 {
        match daemon.refresh_lists_delta(addr) {
            Ok(v) => return v,
            Err(e) => {
                assert!(e.is_transient(), "only transient failures expected: {e:?}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    panic!("delta refresh failed to converge through the lossy channel");
}

/// The ISSUE's delta-convergence claim: URL_DELTA frames crossing a channel
/// that drops, duplicates, and reorders must leave the delta-synced router
/// enforcing *exactly* the list a full-fetch control router enforces — same
/// order-insensitive digest — with every retry/duplicate application
/// idempotent and nothing panicking.
#[test]
fn url_delta_sync_converges_through_lossy_channel() {
    let w = build_world(&WorldSpec {
        seed: 0x0DE17A,
        users: 4,
        routers: 2,
    })
    .unwrap();
    let tokens = w.tokens.clone();
    let mut routers = w.routers.into_iter();
    let delta_router = routers.next().unwrap();
    // Control router stays in-process and syncs by full signed bulletins.
    let mut control = routers.next().unwrap();

    let no_daemon = NoDaemon::spawn(w.no, "127.0.0.1:0", fast_cfg()).unwrap();
    let daemon =
        RouterDaemon::spawn(delta_router, 0x0DE17A ^ 0xDAE, "127.0.0.1:0", fast_cfg()).unwrap();
    // Drop/duplicate/reorder only: corruption is covered by the handshake
    // test above, and a flipped bit inside a signed delta is *supposed* to
    // surface as a hard signature error, not converge.
    let mut proxy = FaultProxy::spawn(
        no_daemon.addr(),
        ProxyConfig {
            plan: FaultPlan {
                drop_prob: 0.20,
                duplicate_prob: 0.20,
                reorder_prob: 0.20,
                ..FaultPlan::NONE
            },
            seed: 0x0DE17A5EED,
            ..ProxyConfig::default()
        },
    )
    .unwrap();

    for (round, token) in tokens.iter().enumerate() {
        assert!(no_daemon.revoke_user(token), "token must be in grt");

        // O(churn) path through the faulty channel, retried to convergence;
        // an immediate second fetch exercises the duplicate/AlreadyCurrent
        // path end-to-end and must land on the same version.
        let v = refresh_delta_with_retry(&daemon, proxy.addr());
        let v2 = refresh_delta_with_retry(&daemon, proxy.addr());
        assert_eq!(v, v2, "duplicate delta fetch must be idempotent");
        assert_eq!(
            daemon.with_router(|r| r.revocation().url_len()),
            round + 1,
            "every revocation round must reach the enforcement engine"
        );

        // Full-fetch control path, straight from the operator.
        let now = wall_ms();
        let (crl, url) = no_daemon.with_operator(|op| (op.publish_crl(now), op.publish_url(now)));
        control.update_lists(crl, url);
    }

    assert_eq!(
        daemon.with_router(|r| r.revocation().digest()),
        control.revocation().digest(),
        "delta-synced and full-synced routers must enforce identical lists"
    );
    // The channel really was hostile, the delta fast lane really ran (any
    // fallback to a full fetch still converges — that is the point — but at
    // least one signed diff must have chained), and nothing panicked.
    assert!(proxy.stats().total_faults() > 0, "plan must have fired");
    assert!(
        daemon.metrics().url_deltas_out >= 1,
        "at least one delta must have chained onto the engine"
    );
    assert_eq!(daemon.metrics().handler_panics, 0);
    assert_eq!(no_daemon.metrics().handler_panics, 0);

    proxy.shutdown();
    daemon.shutdown().unwrap();
    no_daemon.shutdown().unwrap();
}

#[test]
fn retry_gives_up_cleanly_under_total_blackout() {
    let (daemon, mut agent) = spawn_router(0xDEAD);
    let mut proxy = FaultProxy::spawn(
        daemon.addr(),
        ProxyConfig {
            plan: FaultPlan {
                drop_prob: 1.0,
                ..FaultPlan::NONE
            },
            seed: 1,
            ..ProxyConfig::default()
        },
    )
    .unwrap();

    let policy = RetryPolicy {
        base_delay: 5,
        max_delay: 20,
        max_attempts: 3,
    };
    let err = match agent.connect_with_retry(proxy.addr(), &policy) {
        Ok(_) => panic!("no handshake can cross a 100%-drop channel"),
        Err(e) => e,
    };
    assert_eq!(
        err,
        NetError::Timeout,
        "blackout surfaces as deadline misses"
    );
    // Initial attempt + max_attempts retries, then a clean give-up.
    assert_eq!(agent.metrics().handshakes_fail, 4);
    assert_eq!(agent.metrics().handshakes_ok, 0);
    assert!(
        proxy
            .stats()
            .dropped
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    assert_eq!(daemon.metrics().handler_panics, 0);

    proxy.shutdown();
    daemon.shutdown().unwrap();
}
