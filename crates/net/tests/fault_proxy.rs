//! Adversarial-channel regression: the PR 2 chaos suite's claims —
//! handshakes converge under drops/corruption via retry, and no fault
//! pattern panics the stack — re-validated over real TCP through the
//! frame-aware fault proxy.

use std::time::Duration;

use peace_net::{
    build_world, clock::wall_ms, ConnConfig, DaemonConfig, FaultProxy, NetError, ProxyConfig,
    RouterDaemon, Transient, UserAgent, WorldSpec,
};
use peace_protocol::{FaultPlan, RetryPolicy};

fn fast_cfg() -> DaemonConfig {
    DaemonConfig {
        conn: ConnConfig {
            // Short read deadline so dropped frames surface as quick
            // timeouts instead of stalling each retry for seconds.
            read_timeout: Some(Duration::from_millis(400)),
            write_timeout: Some(Duration::from_millis(400)),
            ..ConnConfig::default()
        },
        max_connections: 16,
        connect_timeout: Duration::from_secs(2),
        drain: Duration::from_secs(2),
        ..DaemonConfig::default()
    }
}

fn spawn_router(seed: u64) -> (RouterDaemon, UserAgent) {
    let w = build_world(&WorldSpec {
        seed,
        users: 1,
        routers: 1,
    })
    .unwrap();
    let mut router = w.routers.into_iter().next().unwrap();
    let now = wall_ms();
    router.update_lists(w.no.publish_crl(now), w.no.publish_url(now));
    let daemon = RouterDaemon::spawn(router, seed ^ 0xDAE, "127.0.0.1:0", fast_cfg()).unwrap();
    let agent = UserAgent::new(
        w.users.into_iter().next().unwrap(),
        seed ^ 0xA6E,
        fast_cfg(),
    );
    (daemon, agent)
}

#[test]
fn handshake_converges_through_drops_and_bitflips() {
    let (daemon, mut agent) = spawn_router(0xFA117);
    let mut proxy = FaultProxy::spawn(
        daemon.addr(),
        ProxyConfig {
            plan: FaultPlan {
                drop_prob: 0.25,
                bit_flip_prob: 0.12,
                truncate_prob: 0.08,
                ..FaultPlan::NONE
            },
            seed: 0xBADCAB1E,
            ..ProxyConfig::default()
        },
    )
    .unwrap();

    let policy = RetryPolicy {
        base_delay: 10,
        max_delay: 80,
        max_attempts: 40,
    };
    let mut sess = agent
        .connect_with_retry(proxy.addr(), &policy)
        .expect("handshake must converge under a lossy channel");

    // Data traffic through the same hostile proxy: a mangled record kills
    // the strict in-order AEAD session, so echo until one round survives,
    // re-handshaking (fresh session) whenever the channel eats one.
    let mut echoed = false;
    for round in 0..40u32 {
        match sess.echo(format!("round-{round}").as_bytes()) {
            Ok(back) => {
                assert_eq!(back, format!("round-{round}").as_bytes());
                echoed = true;
                break;
            }
            Err(e) => {
                assert!(e.is_transient(), "only transient failures expected: {e:?}");
                sess = match agent.connect_with_retry(proxy.addr(), &policy) {
                    Ok(s) => s,
                    Err(e) => panic!("re-handshake failed to converge: {e:?}"),
                };
            }
        }
    }
    assert!(echoed, "an echo round must eventually survive the channel");

    // The channel really was hostile, and nothing panicked anywhere.
    assert!(proxy.stats().total_faults() > 0, "plan must have fired");
    assert_eq!(daemon.metrics().handler_panics, 0);
    assert_eq!(agent.metrics().handler_panics, 0);
    assert!(
        agent.metrics().handshakes_ok >= 1,
        "at least the converged handshake"
    );

    proxy.shutdown();
    daemon.shutdown().unwrap();
}

#[test]
fn retry_gives_up_cleanly_under_total_blackout() {
    let (daemon, mut agent) = spawn_router(0xDEAD);
    let mut proxy = FaultProxy::spawn(
        daemon.addr(),
        ProxyConfig {
            plan: FaultPlan {
                drop_prob: 1.0,
                ..FaultPlan::NONE
            },
            seed: 1,
            ..ProxyConfig::default()
        },
    )
    .unwrap();

    let policy = RetryPolicy {
        base_delay: 5,
        max_delay: 20,
        max_attempts: 3,
    };
    let err = match agent.connect_with_retry(proxy.addr(), &policy) {
        Ok(_) => panic!("no handshake can cross a 100%-drop channel"),
        Err(e) => e,
    };
    assert_eq!(
        err,
        NetError::Timeout,
        "blackout surfaces as deadline misses"
    );
    // Initial attempt + max_attempts retries, then a clean give-up.
    assert_eq!(agent.metrics().handshakes_fail, 4);
    assert_eq!(agent.metrics().handshakes_ok, 0);
    assert!(
        proxy
            .stats()
            .dropped
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    assert_eq!(daemon.metrics().handler_panics, 0);

    proxy.shutdown();
    daemon.shutdown().unwrap();
}
