//! Connection-cap backpressure semantics: a daemon at its connection
//! limit turns new dials away with an explicit BUSY reject, the client
//! maps that to the *transient* [`NetError::ConnLimit`] (counted as
//! `net.conn_rejected`), and `connect_with_retry` rides through the
//! rejection once a slot frees up — the contract the open-loop load
//! harness depends on to distinguish overload from hard failure.

use std::time::Duration;

use peace_net::{
    build_world, ConnConfig, DaemonConfig, NetError, RouterDaemon, Transient, UserAgent, WorldSpec,
};
use peace_protocol::RetryPolicy;

fn test_cfg() -> DaemonConfig {
    DaemonConfig {
        conn: ConnConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            ..ConnConfig::default()
        },
        max_connections: 1,
        connect_timeout: Duration::from_secs(5),
        drain: Duration::from_secs(3),
        ..DaemonConfig::default()
    }
}

#[test]
fn conn_cap_rejection_is_transient_and_counted() {
    let spec = WorldSpec {
        seed: 0xCAB,
        users: 2,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let cfg = test_cfg();
    let mut router = w.routers.into_iter().next().unwrap();
    let now = peace_net::clock::wall_ms();
    router.update_lists(w.no.publish_crl(now), w.no.publish_url(now));
    let daemon = RouterDaemon::spawn(router, 1, "127.0.0.1:0", cfg).unwrap();
    let addr = daemon.addr();

    let mut users = w.users.into_iter();
    let mut holder = UserAgent::new(users.next().unwrap(), 11, cfg);
    let mut second = UserAgent::new(users.next().unwrap(), 12, cfg);

    // Occupy the single slot with an established session.
    let sess = holder.connect(addr).expect("first connection");

    // A plain connect while the slot is held surfaces the BUSY reject as
    // the dedicated transient ConnLimit error and bumps the counter.
    let err = match second.connect(addr) {
        Ok(_) => panic!("second dial must be turned away at the cap"),
        Err(e) => e,
    };
    assert!(
        matches!(err, NetError::ConnLimit),
        "expected ConnLimit, got {err:?}"
    );
    assert!(err.is_transient(), "cap rejection must invite a retry");
    assert_eq!(second.metrics().conn_rejected, 1);
    assert_eq!(second.metrics().handshakes_ok, 0);
    assert!(daemon.metrics().connections_rejected >= 1);

    // Release the slot in the background; a retrying connect backs off
    // through the BUSY rejections and lands once capacity returns.
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(400));
        sess.close();
    });
    let policy = RetryPolicy {
        base_delay: 150,
        max_delay: 1000,
        max_attempts: 20,
    };
    let sess2 = second
        .connect_with_retry(addr, &policy)
        .expect("retry must succeed once the slot frees");
    releaser.join().unwrap();
    assert_eq!(second.metrics().handshakes_ok, 1);
    assert!(
        second.metrics().conn_rejected >= 1,
        "at least the initial rejection was counted"
    );
    sess2.close();

    assert_eq!(daemon.metrics().handler_panics, 0);
    daemon.shutdown().unwrap();
}
