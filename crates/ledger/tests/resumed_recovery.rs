//! Checkpoint-resumed recovery contract: `open_resumed` must agree with
//! the full from-the-head replay on every observable (head, indexes,
//! read-back), resume only when the sidecar hint survives CRC + ECDSA
//! verification and matches the log, and still catch damage after the
//! trusted checkpoint.

use std::fs;
use std::path::{Path, PathBuf};

use peace_ecdsa::{SigningKey, VerifyingKey};
use peace_ledger::{Ledger, LedgerConfig, LedgerQuery, LedgerRecord, SyncPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> LedgerConfig {
    LedgerConfig {
        // Tiny segments force a multi-segment log so the resume point
        // sits in a middle segment with trusted segments before it and
        // replayed ones after.
        segment_max_bytes: 256,
        sync: SyncPolicy::Always,
        ..LedgerConfig::default()
    }
}

fn rollover(epoch: u64) -> LedgerRecord {
    LedgerRecord::EpochRollover { epoch }
}

/// Builds a multi-segment ledger with a signed checkpoint in the middle
/// and more records after it; returns the signing key.
fn build(dir: &Path) -> SigningKey {
    let mut rng = StdRng::seed_from_u64(0xC4EC);
    let key = SigningKey::random(&mut rng);
    let (mut ledger, _) = Ledger::open(dir, cfg()).unwrap();
    for i in 0..8 {
        ledger.append(rollover(i), 1_000 + i).unwrap();
    }
    ledger.checkpoint(&key, "NO", 2_000).unwrap();
    for i in 8..14 {
        ledger.append(rollover(i), 3_000 + i).unwrap();
    }
    assert!(ledger.head().segments >= 3, "want a multi-segment log");
    key
}

fn resolver(key: &SigningKey) -> impl Fn(&str) -> Option<VerifyingKey> {
    let vk = *key.verifying_key();
    move |s: &str| (s == "NO").then_some(vk)
}

#[test]
fn resumed_open_matches_full_open() {
    let dir = tmpdir("resume-match");
    let key = build(&dir);

    let (full, full_report) = Ledger::open(&dir, cfg()).unwrap();
    assert_eq!(full_report.resumed_from, None);

    let (resumed, report) = Ledger::open_resumed(&dir, cfg(), resolver(&key)).unwrap();
    assert_eq!(
        report.resumed_from,
        Some(8),
        "chain replay starts at the checkpoint"
    );
    assert_eq!(report.records, full_report.records);
    assert_eq!(resumed.head(), full.head());
    assert_eq!(resumed.last_checkpoint_seq(), full.last_checkpoint_seq());

    // Indexes agree: every record reads back identically.
    let q = LedgerQuery::default();
    assert_eq!(resumed.query(&q).unwrap(), full.query(&q).unwrap());
    drop(full);

    // The resumed instance continues the chain correctly: append,
    // checkpoint, and offline-verify the whole log.
    let mut resumed = resumed;
    resumed.append(rollover(99), 5_000).unwrap();
    resumed.checkpoint(&key, "NO", 5_001).unwrap();
    drop(resumed);
    let vk = *key.verifying_key();
    let chain = peace_ledger::verify_chain(&dir, |s| (s == "NO").then_some(vk)).unwrap();
    assert_eq!(chain.checkpoints_verified, 2);
    assert!(chain.anchored);
}

#[test]
fn missing_or_damaged_hint_falls_back_to_full_replay() {
    let dir = tmpdir("resume-fallback");
    let key = build(&dir);

    // Remove the sidecar: open_resumed silently does the full replay.
    fs::remove_file(dir.join("resume.pch")).unwrap();
    let (ledger, report) = Ledger::open_resumed(&dir, cfg(), resolver(&key)).unwrap();
    assert_eq!(report.resumed_from, None);
    assert_eq!(ledger.len(), 15);
    drop(ledger);

    // A corrupted sidecar (bad CRC) is ignored the same way.
    let dir2 = tmpdir("resume-fallback-crc");
    let key2 = build(&dir2);
    let hint_path = dir2.join("resume.pch");
    let mut bytes = fs::read(&hint_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    fs::write(&hint_path, &bytes).unwrap();
    let (ledger, report) = Ledger::open_resumed(&dir2, cfg(), resolver(&key2)).unwrap();
    assert_eq!(report.resumed_from, None);
    assert_eq!(ledger.len(), 15);
}

#[test]
fn unknown_signer_forces_full_replay() {
    let dir = tmpdir("resume-unknown-signer");
    let _key = build(&dir);
    // A resolver that trusts nobody: the signed hint cannot be used.
    let (ledger, report) = Ledger::open_resumed(&dir, cfg(), |_| None).unwrap();
    assert_eq!(report.resumed_from, None);
    assert_eq!(ledger.len(), 15);
}

#[test]
fn wrong_key_forces_full_replay() {
    let dir = tmpdir("resume-wrong-key");
    let _key = build(&dir);
    let mut rng = StdRng::seed_from_u64(7);
    let imposter = SigningKey::random(&mut rng);
    let (ledger, report) = Ledger::open_resumed(&dir, cfg(), resolver(&imposter)).unwrap();
    assert_eq!(report.resumed_from, None);
    assert_eq!(ledger.len(), 15);
}

#[test]
fn damage_after_the_checkpoint_is_still_caught() {
    let dir = tmpdir("resume-tail-damage");
    let key = build(&dir);

    // Flip a payload byte in the LAST segment (after the checkpoint):
    // resumed recovery replays that region, so the damage is a torn
    // tail there, truncated exactly as a full open would.
    let mut segs: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "pls"))
        .collect();
    segs.sort();
    let last = segs.last().unwrap().clone();
    let mut bytes = fs::read(&last).unwrap();
    let n = bytes.len();
    bytes[n - 3] ^= 0x20;
    fs::write(&last, &bytes).unwrap();

    let (full_copy_len, full_flaw) = {
        let snapshot = tmpdir("resume-tail-damage-full");
        fs::create_dir_all(&snapshot).unwrap();
        for s in &segs {
            fs::copy(s, snapshot.join(s.file_name().unwrap())).unwrap();
        }
        let (ledger, report) = Ledger::open(&snapshot, cfg()).unwrap();
        (ledger.len(), report.tail_flaw)
    };

    let (resumed, report) = Ledger::open_resumed(&dir, cfg(), resolver(&key)).unwrap();
    assert!(report.resumed_from.is_some());
    assert_eq!(report.tail_flaw, full_flaw);
    assert_eq!(resumed.len(), full_copy_len);
}

#[test]
fn truncation_destroying_the_checkpoint_falls_back() {
    let dir = tmpdir("resume-truncate-ck");
    let key = build(&dir);

    // Truncate the whole log down to its first segment: the hint now
    // names a segment that no longer exists, so the resumed open must
    // fall back to a full replay of what is left.
    let mut segs: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "pls"))
        .collect();
    segs.sort();
    for s in &segs[1..] {
        fs::remove_file(s).unwrap();
    }
    let (ledger, report) = Ledger::open_resumed(&dir, cfg(), resolver(&key)).unwrap();
    assert_eq!(report.resumed_from, None);
    assert!(ledger.len() < 15);
}
