//! `resume.pch` sidecar damage contract: every way the hint can rot —
//! truncation, bit flips, a stale head naming vanished segments, a bad
//! magic, an untrusted or forged signature — must produce a clean full
//! replay (identical observable state to `Ledger::open`) *and* surface
//! the rejection reason in `RecoveryReport::resume_fallback` plus the
//! `ledger.resume_fallback` counter, never a silent slow open.

use std::fs;
use std::path::{Path, PathBuf};

use peace_ecdsa::{SigningKey, VerifyingKey};
use peace_ledger::{Ledger, LedgerConfig, LedgerQuery, LedgerRecord, SyncPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> LedgerConfig {
    LedgerConfig {
        segment_max_bytes: 256,
        sync: SyncPolicy::Always,
        ..LedgerConfig::default()
    }
}

/// Builds a multi-segment ledger with a signed checkpoint (which writes
/// the `resume.pch` sidecar) and a post-checkpoint tail.
fn build(dir: &Path) -> SigningKey {
    let mut rng = StdRng::seed_from_u64(0x51DE);
    let key = SigningKey::random(&mut rng);
    let (mut ledger, _) = Ledger::open(dir, cfg()).unwrap();
    for i in 0..8 {
        ledger
            .append(LedgerRecord::EpochRollover { epoch: i }, 1_000 + i)
            .unwrap();
    }
    ledger.checkpoint(&key, "NO", 2_000).unwrap();
    for i in 8..14 {
        ledger
            .append(LedgerRecord::EpochRollover { epoch: i }, 3_000 + i)
            .unwrap();
    }
    key
}

fn resolver(key: &SigningKey) -> impl Fn(&str) -> Option<VerifyingKey> {
    let vk = *key.verifying_key();
    move |s: &str| (s == "NO").then_some(vk)
}

/// Opens with the damaged hint and asserts (a) the fallback produced the
/// exact same observable ledger as a trusting-nothing full open, (b) the
/// report carries `reason`, (c) the process-wide fallback counter moved.
fn assert_clean_fallback(dir: &Path, key: &SigningKey, reason: &'static str) {
    let fallbacks_before = peace_ledger::timing::resume_fallback().get();
    let (resumed, report) = Ledger::open_resumed(dir, cfg(), resolver(key)).unwrap();
    assert_eq!(report.resumed_from, None, "hint must not be trusted");
    assert_eq!(report.resume_fallback, Some(reason));
    assert!(
        peace_ledger::timing::resume_fallback().get() > fallbacks_before,
        "fallback must be counted"
    );

    let (full, full_report) = Ledger::open(dir, cfg()).unwrap();
    assert_eq!(
        full_report.resume_fallback, None,
        "plain open never falls back"
    );
    assert_eq!(resumed.head(), full.head());
    let q = LedgerQuery::default();
    assert_eq!(resumed.query(&q).unwrap(), full.query(&q).unwrap());
}

#[test]
fn truncated_sidecar_is_observable() {
    // Cut below the 4-byte CRC trailer: unreadably short.
    let dir = tmpdir("sidecar-trunc-short");
    let key = build(&dir);
    let hint = dir.join("resume.pch");
    let bytes = fs::read(&hint).unwrap();
    fs::write(&hint, &bytes[..3]).unwrap();
    assert_clean_fallback(&dir, &key, "hint_truncated");

    // Cut mid-body: the CRC no longer matches what is left.
    let dir = tmpdir("sidecar-trunc-mid");
    let key = build(&dir);
    let hint = dir.join("resume.pch");
    let bytes = fs::read(&hint).unwrap();
    fs::write(&hint, &bytes[..bytes.len() / 2]).unwrap();
    assert_clean_fallback(&dir, &key, "hint_crc_mismatch");
}

#[test]
fn bit_flipped_sidecar_is_observable() {
    let dir = tmpdir("sidecar-bitflip");
    let key = build(&dir);
    let hint = dir.join("resume.pch");
    let mut bytes = fs::read(&hint).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&hint, &bytes).unwrap();
    assert_clean_fallback(&dir, &key, "hint_crc_mismatch");
}

#[test]
fn bad_magic_is_observable() {
    // Rewrite the sidecar wholesale with a wrong magic but a *valid* CRC,
    // so the magic check itself is what rejects it.
    let dir = tmpdir("sidecar-bad-magic");
    let key = build(&dir);
    let hint = dir.join("resume.pch");
    let mut bytes = fs::read(&hint).unwrap();
    bytes[0] ^= 0xFF;
    let body_len = bytes.len() - 4;
    let crc = peace_ledger::crc::crc32(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&crc.to_be_bytes());
    fs::write(&hint, &bytes).unwrap();
    assert_clean_fallback(&dir, &key, "hint_bad_magic");
}

#[test]
fn stale_head_hint_is_observable() {
    // Delete every segment after the first: the hint still verifies but
    // names a base segment that no longer exists on disk.
    let dir = tmpdir("sidecar-stale-head");
    let key = build(&dir);
    let mut segs: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "pls"))
        .collect();
    segs.sort();
    assert!(segs.len() >= 3, "want a multi-segment log");
    for s in &segs[1..] {
        fs::remove_file(s).unwrap();
    }
    assert_clean_fallback(&dir, &key, "hint_stale_segment");
}

#[test]
fn forged_and_untrusted_signatures_are_observable() {
    let dir = tmpdir("sidecar-forged");
    let _key = build(&dir);

    // A resolver that trusts nobody.
    let fallbacks_before = peace_ledger::timing::resume_fallback().get();
    let (_l, report) = Ledger::open_resumed(&dir, cfg(), |_| None).unwrap();
    assert_eq!(report.resume_fallback, Some("hint_unknown_signer"));
    assert!(peace_ledger::timing::resume_fallback().get() > fallbacks_before);

    // A resolver that hands back the wrong key.
    let mut rng = StdRng::seed_from_u64(9);
    let imposter = SigningKey::random(&mut rng);
    let (_l, report) = Ledger::open_resumed(&dir, cfg(), resolver(&imposter)).unwrap();
    assert_eq!(report.resume_fallback, Some("hint_bad_signature"));
}

#[test]
fn absent_sidecar_is_silent() {
    // A first-ever open has no hint; that is not damage and must not
    // pollute the fallback signal.
    let dir = tmpdir("sidecar-absent");
    let key = build(&dir);
    fs::remove_file(dir.join("resume.pch")).unwrap();
    let (_l, report) = Ledger::open_resumed(&dir, cfg(), resolver(&key)).unwrap();
    assert_eq!(report.resumed_from, None);
    assert_eq!(report.resume_fallback, None);
}
