//! Adversarial mutation harness for the ledger's on-disk format, reusing
//! the wire-mutation operators (truncate, bit-flip, splice, excise) from
//! the protocol chaos suite.
//!
//! Properties:
//! * record encodings round-trip exactly;
//! * arbitrary garbage never panics the entry decoder or the recovery
//!   scanner;
//! * a mutated segment file either recovers to an exact prefix of the
//!   original record sequence (CRC + chain catch the damage) or refuses
//!   to open — records are never silently altered or reordered.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use peace_ledger::{
    AccessRecord, Entry, Ledger, LedgerConfig, LedgerError, LedgerRecord, SyncPolicy,
    SEGMENT_HEADER_LEN,
};
use peace_protocol::audit::LoggedSession;
use peace_protocol::entities::{GroupManager, NetworkOperator, Ttp, UserClient};
use peace_protocol::ids::UserId;
use peace_protocol::ProtocolConfig;
use peace_wire::{Decode, Encode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> LedgerConfig {
    LedgerConfig {
        sync: SyncPolicy::Always,
        ..LedgerConfig::default()
    }
}

/// A pristine single-segment ledger image holding one of every record
/// kind (a real group-signed access transcript included), plus the
/// decoded records for prefix comparison.
struct Fixture {
    image: Vec<u8>,
    originals: Vec<Entry>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn real_session() -> (LoggedSession, NetworkOperator) {
    let mut rng = StdRng::seed_from_u64(0x001E_D6E2);
    let mut no = NetworkOperator::new(ProtocolConfig::default(), &mut rng);
    let gid = no.register_group("org", &mut rng);
    let (gm_bundle, ttp_bundle) = no.issue_shares(gid, 2, &mut rng).unwrap();
    let mut gm = GroupManager::new(gid);
    gm.receive_bundle(&gm_bundle, no.npk()).unwrap();
    let mut ttp = Ttp::new();
    ttp.receive_bundle(&ttp_bundle, no.npk()).unwrap();
    let uid = UserId("alice".into());
    let mut alice = UserClient::new(uid.clone(), *no.gpk(), *no.npk(), *no.config(), &mut rng);
    let assignment = gm.assign(&uid).unwrap();
    let delivery = ttp.deliver(assignment.index, &uid).unwrap();
    alice.enroll(&assignment, &delivery).unwrap();
    let mut router = no.provision_router("MR-1", u64::MAX / 2, &mut rng);
    let beacon = router.beacon(1_000, &mut rng);
    let req = alice.request_access(&beacon, 1_050, &mut rng).unwrap();
    router.process_access_request(&req, 1_100).unwrap();
    (router.drain_log().remove(0), no)
}

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let (session, no) = real_session();
        let dir = tmpdir("mut-fixture");
        let (mut ledger, _) = Ledger::open(&dir, cfg()).unwrap();
        ledger
            .append(
                LedgerRecord::Access(AccessRecord {
                    router: "MR-1".into(),
                    session,
                }),
                1_200,
            )
            .unwrap();
        ledger
            .append(
                LedgerRecord::RouterRevocation {
                    serial: 9,
                    crl_version: 1,
                },
                1_300,
            )
            .unwrap();
        ledger
            .append(LedgerRecord::EpochRollover { epoch: 1 }, 1_400)
            .unwrap();
        ledger
            .append(
                LedgerRecord::Attribution {
                    session_seq: 0,
                    group: 0,
                    slot: 1,
                },
                1_500,
            )
            .unwrap();
        ledger.checkpoint(no.signing_key(), "NO", 1_600).unwrap();
        let originals = ledger.iter_all().unwrap();
        drop(ledger);
        let image = fs::read(dir.join(format!("seg-{:016x}.pls", 0))).unwrap();
        Fixture { image, originals }
    })
}

const OPERATORS: [&str; 4] = ["truncate", "bit-flip", "splice", "excise"];

/// Applies one mutation operator (same operators as the protocol chaos
/// suite); `None` when the result would equal the input.
fn mutate(op: &str, bytes: &[u8], salt: u64) -> Option<Vec<u8>> {
    if bytes.is_empty() {
        return None;
    }
    let len = bytes.len() as u64;
    let mut out = bytes.to_vec();
    match op {
        "truncate" => out.truncate((salt % len) as usize),
        "bit-flip" => {
            let bit = salt % (len * 8);
            out[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        "splice" => {
            let start = (salt % len) as usize;
            let run = 1 + (salt >> 17) as usize % 8;
            let mut x = salt | 1;
            for (i, slot) in out.iter_mut().skip(start).take(run).enumerate() {
                x = x.wrapping_mul(0x5DEE_CE66D).wrapping_add(11);
                *slot = (x >> 16) as u8;
                if i == 0 && *slot == bytes[start] {
                    *slot ^= 0xA5;
                }
            }
        }
        "excise" => {
            let start = (salt % len) as usize;
            let run = (1 + (salt >> 23) as usize % 16).min(out.len() - start);
            if run == 0 {
                return None;
            }
            out.drain(start..start + run);
        }
        _ => unreachable!("unknown operator {op}"),
    }
    (out != bytes).then_some(out)
}

/// Opens a ledger over `image` written as the sole segment of a fresh dir.
fn open_image(dir: &Path, image: &[u8]) -> peace_ledger::Result<(Ledger, Vec<Entry>)> {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).unwrap();
    fs::write(dir.join(format!("seg-{:016x}.pls", 0)), image).unwrap();
    let (ledger, _) = Ledger::open(dir, cfg())?;
    let entries = ledger.iter_all()?;
    Ok((ledger, entries))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simple record kinds round-trip through the canonical encoding for
    /// arbitrary field values.
    #[test]
    fn simple_records_roundtrip(seq in any::<u64>(), at_ms in any::<u64>(),
                                a in any::<u64>(), b in any::<u64>(), c in any::<u32>()) {
        let records = [
            LedgerRecord::UserRevocation {
                token: fixture_token(),
                url_version: a,
            },
            LedgerRecord::RouterRevocation { serial: a, crl_version: b },
            LedgerRecord::EpochRollover { epoch: a },
            LedgerRecord::Attribution { session_seq: b, group: c, slot: c ^ 1 },
        ];
        for record in records {
            let e = Entry { seq, at_ms, record };
            prop_assert_eq!(Entry::from_wire(&e.to_wire()).unwrap(), e);
        }
    }

    /// The 4-operator mutation matrix against the full segment image:
    /// recovery yields an exact prefix of the original records, or the
    /// open refuses — never an altered or reordered record.
    #[test]
    fn mutated_segment_recovers_prefix_or_refuses(salt in any::<u64>()) {
        let fx = fixture();
        let dir = tmpdir("mut-matrix");
        for (oi, op) in OPERATORS.iter().enumerate() {
            let s = salt ^ ((oi as u64 + 1) << 56);
            let Some(mutated) = mutate(op, &fx.image, s) else { continue };
            match open_image(&dir, &mutated) {
                Ok((_ledger, entries)) => {
                    prop_assert!(
                        entries.len() <= fx.originals.len(),
                        "{op} salt {s:#x}: more records than written"
                    );
                    for (got, want) in entries.iter().zip(&fx.originals) {
                        prop_assert_eq!(got, want, "{} salt {:#x}: record altered", op, s);
                    }
                }
                // Header damage (or a broken chain) refuses to open: that
                // is tampering, not a crash artifact.
                Err(LedgerError::Corrupt { .. }) | Err(LedgerError::ChainBroken { .. }) => {}
                Err(e) => prop_assert!(false, "{} salt {:#x}: unexpected error {:?}", op, s, e),
            }
        }
    }

    /// Garbage never panics the entry decoder or the recovery scanner.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Entry::from_wire(&bytes);
        let dir = tmpdir("mut-garbage");
        // Any outcome is fine; it just must not panic.
        let _ = open_image(&dir, &bytes);
    }
}

/// A real revocation token for the round-trip strategy (tokens are curve
/// points; arbitrary bytes would not decode).
fn fixture_token() -> peace_groupsig::RevocationToken {
    static TOKEN: OnceLock<peace_groupsig::RevocationToken> = OnceLock::new();
    *TOKEN.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(3);
        peace_groupsig::RevocationToken(peace_curve::G1::random(&mut rng))
    })
}

/// The recovery scanner's shallow parse extracts exactly the facts the
/// full decoder derives, for every record kind (a real group-signed
/// access transcript included) — so index-only recovery can never build
/// different indexes than a deep replay would.
#[test]
fn shallow_parse_matches_full_decode() {
    let fx = fixture();
    assert!(!fx.originals.is_empty());
    for e in &fx.originals {
        let shallow = peace_ledger::ShallowEntry::parse(&e.to_wire()).unwrap();
        assert_eq!(shallow, e.to_shallow());
    }
}

/// The untouched image opens cleanly and round-trips every record.
#[test]
fn pristine_image_roundtrips() {
    let fx = fixture();
    let dir = tmpdir("mut-pristine");
    let (ledger, entries) = open_image(&dir, &fx.image).unwrap();
    assert_eq!(entries.len(), fx.originals.len());
    assert_eq!(&entries, &fx.originals);
    assert!(ledger.len() as usize == fx.originals.len());
    // Truncating below the header yields a discarded segment and a fresh
    // (empty) ledger rather than an error: nothing valid was lost.
    let (ledger, entries) = open_image(&dir, &fx.image[..SEGMENT_HEADER_LEN / 2]).unwrap();
    assert!(entries.is_empty());
    assert_eq!(ledger.head().next_seq, 0);
}
