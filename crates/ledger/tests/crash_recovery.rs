//! Crash-recovery contract: truncating the log at *every* byte offset of
//! the final records must recover the longest valid prefix,
//! deterministically, and leave the ledger appendable; damage anywhere
//! except the tail of the last segment must refuse to open.

use std::fs;
use std::path::{Path, PathBuf};

use peace_ecdsa::SigningKey;
use peace_ledger::{
    verify_chain, Ledger, LedgerConfig, LedgerError, LedgerRecord, SyncPolicy, SEGMENT_HEADER_LEN,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> LedgerConfig {
    LedgerConfig {
        sync: SyncPolicy::Always,
        ..LedgerConfig::default()
    }
}

fn rollover(epoch: u64) -> LedgerRecord {
    LedgerRecord::EpochRollover { epoch }
}

fn seg0(dir: &Path) -> PathBuf {
    dir.join(format!("seg-{:016x}.pls", 0))
}

#[test]
fn truncation_at_every_offset_recovers_longest_valid_prefix() {
    let pristine = tmpdir("crash-pristine");
    // Record the file length after each append: `ends[i]` is the valid
    // prefix holding exactly i records.
    let mut ends = vec![SEGMENT_HEADER_LEN as u64];
    {
        let (mut ledger, _) = Ledger::open(&pristine, cfg()).unwrap();
        for i in 0..4 {
            ledger.append(rollover(i), 1_000 + i).unwrap();
            ends.push(fs::metadata(seg0(&pristine)).unwrap().len());
        }
    }
    let full = fs::read(seg0(&pristine)).unwrap();
    assert_eq!(*ends.last().unwrap(), full.len() as u64);

    let work = tmpdir("crash-truncate");
    for cut in SEGMENT_HEADER_LEN..=full.len() {
        let _ = fs::remove_dir_all(&work);
        fs::create_dir_all(&work).unwrap();
        fs::write(seg0(&work), &full[..cut]).unwrap();

        let (ledger, report) = Ledger::open(&work, cfg()).unwrap();
        // Longest valid prefix: every record whose frame ends at or
        // before the cut survives; everything after is torn away.
        let expect = ends.iter().filter(|&&e| e <= cut as u64).count() as u64 - 1;
        assert_eq!(ledger.len(), expect, "cut at {cut}");
        assert_eq!(ledger.head().next_seq, expect, "cut at {cut}");
        let clean = ends.contains(&(cut as u64));
        assert_eq!(report.tail_flaw.is_none(), clean, "cut at {cut}");
        assert_eq!(
            report.torn_bytes,
            cut as u64 - ends[expect as usize],
            "cut at {cut}"
        );
        // Recovery truncated the file: a second open must be clean and
        // identical (determinism).
        drop(ledger);
        let (again, report2) = Ledger::open(&work, cfg()).unwrap();
        assert_eq!(report2.tail_flaw, None, "cut at {cut} not repaired");
        assert_eq!(again.len(), expect);
    }
}

#[test]
fn recovered_ledger_stays_appendable_and_verifiable() {
    let dir = tmpdir("crash-append-after");
    {
        let (mut ledger, _) = Ledger::open(&dir, cfg()).unwrap();
        for i in 0..3 {
            ledger.append(rollover(i), 2_000 + i).unwrap();
        }
    }
    // Tear the tail mid-record.
    let path = seg0(&dir);
    let len = fs::metadata(&path).unwrap().len();
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..len as usize - 5]).unwrap();

    let (mut ledger, report) = Ledger::open(&dir, cfg()).unwrap();
    assert_eq!(ledger.len(), 2);
    assert!(report.tail_flaw.is_some());

    // Appends continue the chain from the recovered head.
    let seq = ledger.append(rollover(9), 3_000).unwrap();
    assert_eq!(seq, 2);
    let mut rng = StdRng::seed_from_u64(42);
    let key = SigningKey::random(&mut rng);
    ledger.checkpoint(&key, "NO", 3_001).unwrap();
    drop(ledger);

    let vk = *key.verifying_key();
    let report = verify_chain(&dir, |s| (s == "NO").then_some(vk)).unwrap();
    assert_eq!(report.records, 4);
    assert_eq!(report.checkpoints_verified, 1);
    assert!(report.anchored);
}

#[test]
fn interior_damage_refuses_to_open() {
    let dir = tmpdir("crash-interior");
    // Tiny segments: force at least 3 segment files.
    let small = LedgerConfig {
        segment_max_bytes: 128,
        sync: SyncPolicy::Always,
        ..LedgerConfig::default()
    };
    {
        let (mut ledger, _) = Ledger::open(&dir, small).unwrap();
        for i in 0..12 {
            ledger.append(rollover(i), 4_000 + i).unwrap();
        }
        assert!(ledger.head().segments >= 3, "want multiple segments");
    }
    // Flip one payload byte in the middle of the FIRST segment.
    let path = seg0(&dir);
    let mut bytes = fs::read(&path).unwrap();
    let mid = SEGMENT_HEADER_LEN + (bytes.len() - SEGMENT_HEADER_LEN) / 2;
    bytes[mid] ^= 0x10;
    fs::write(&path, &bytes).unwrap();

    match Ledger::open(&dir, small) {
        Err(LedgerError::Corrupt { .. }) | Err(LedgerError::ChainBroken { .. }) => {}
        Err(e) => panic!("interior damage: wrong error {e:?}"),
        Ok(_) => panic!("interior damage must refuse to open"),
    }
    // verify_chain refuses too.
    assert!(verify_chain(&dir, |_| None).is_err());
}

#[test]
fn damaged_header_is_tampering_not_crash() {
    let dir = tmpdir("crash-header");
    {
        let (mut ledger, _) = Ledger::open(&dir, cfg()).unwrap();
        ledger.append(rollover(0), 5_000).unwrap();
    }
    let path = seg0(&dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes[10] ^= 0x01; // inside the header
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Ledger::open(&dir, cfg()),
        Err(LedgerError::Corrupt { .. })
    ));
}

#[test]
fn partial_header_segment_is_discarded() {
    let dir = tmpdir("crash-partial-header");
    let small = LedgerConfig {
        segment_max_bytes: 128,
        sync: SyncPolicy::Always,
        ..LedgerConfig::default()
    };
    let (records, next_base) = {
        let (mut ledger, _) = Ledger::open(&dir, small).unwrap();
        for i in 0..6 {
            ledger.append(rollover(i), 6_000 + i).unwrap();
        }
        (ledger.len(), ledger.head().next_seq)
    };
    // Simulate a crash between creating the next segment file and writing
    // its header: a short junk file with the right name.
    let torn = dir.join(format!("seg-{next_base:016x}.pls"));
    fs::write(&torn, [0xAAu8; 7]).unwrap();

    let (ledger, report) = Ledger::open(&dir, small).unwrap();
    assert_eq!(ledger.len(), records);
    assert_eq!(report.tail_flaw, Some("partial segment header"));
    assert!(!torn.exists(), "partial-header segment must be removed");
}

#[test]
fn rotation_compaction_and_queries_survive_reopen() {
    let dir = tmpdir("crash-compact");
    let small = LedgerConfig {
        segment_max_bytes: 160,
        sync: SyncPolicy::Always,
        ..LedgerConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let key = SigningKey::random(&mut rng);
    {
        let (mut ledger, _) = Ledger::open(&dir, small).unwrap();
        for i in 0..10 {
            ledger.append(rollover(i), 7_000 + i).unwrap();
        }
        // Without a checkpoint, compaction must refuse.
        assert!(matches!(
            ledger.compact(8),
            Err(LedgerError::CannotCompact(_))
        ));
        ledger.checkpoint(&key, "NO", 7_100).unwrap();
        let report = ledger.compact(8).unwrap();
        assert!(report.segments_removed > 0);
        assert!(ledger.head().first_seq > 0);
        // Retained records still readable; dropped ones are gone.
        assert!(ledger.get(ledger.head().first_seq).unwrap().is_some());
        assert_eq!(ledger.get(0).unwrap(), None);
    }
    // Reopen: the compacted ledger recovers from its own segments.
    let (ledger, report) = Ledger::open(&dir, small).unwrap();
    assert_eq!(report.tail_flaw, None);
    assert!(ledger.head().first_seq > 0);
    let vk = *key.verifying_key();
    let chain = verify_chain(&dir, |s| (s == "NO").then_some(vk)).unwrap();
    assert_eq!(chain.next_seq, ledger.head().next_seq);
    assert_eq!(chain.checkpoints_verified, 1);
}
