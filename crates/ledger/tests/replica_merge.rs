//! Merge determinism: the federated ledger's merged view is a pure
//! function of shard *contents* — never of the order ranges happened to
//! arrive in, which replica ingested them, or how often a range was
//! redelivered. Two followers fed the same writer histories through
//! arbitrary interleavings must converge to byte-identical merged
//! digests, with access-transcript dedup picking the same winner.

use std::collections::VecDeque;
use std::fs;
use std::path::{Path, PathBuf};

use peace_ecdsa::{SigningKey, VerifyingKey};
use peace_ledger::{
    AccessRecord, Ledger, LedgerConfig, LedgerRecord, RangeData, ReplicatedLedger, SyncPolicy,
};
use peace_protocol::audit::LoggedSession;
use peace_protocol::entities::{GroupManager, NetworkOperator, Ttp, UserClient};
use peace_protocol::ids::UserId;
use peace_protocol::ProtocolConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WRITERS: [&str; 3] = ["NO-0", "NO-1", "NO-2"];

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> LedgerConfig {
    LedgerConfig {
        sync: SyncPolicy::OnFlush,
        ..LedgerConfig::default()
    }
}

fn keys() -> Vec<SigningKey> {
    (0..WRITERS.len() as u64)
        .map(|i| SigningKey::random(&mut StdRng::seed_from_u64(0xFEDE + i)))
        .collect()
}

fn resolve_with(keys: &[SigningKey]) -> impl Fn(&str) -> Option<VerifyingKey> + '_ {
    move |s: &str| {
        WRITERS
            .iter()
            .position(|w| *w == s)
            .map(|i| *keys[i].verifying_key())
    }
}

/// Builds writer `idx`'s replica with `counts` epoch-rollover records
/// split across two signed checkpoints, and drains it into its full list
/// of checkpoint-bounded ranges.
fn writer_ranges(
    name: &str,
    idx: usize,
    counts: (u64, u64),
    keys: &[SigningKey],
) -> Vec<RangeData> {
    let id = WRITERS[idx];
    let (mut rl, _) = ReplicatedLedger::open(
        tmpdir(&format!("{name}-w{idx}")),
        id,
        cfg(),
        &resolve_with(keys),
    )
    .unwrap();
    let mut at = 1_000;
    for half in [counts.0, counts.1] {
        for e in 0..half {
            at += 1;
            rl.local_mut()
                .append(LedgerRecord::EpochRollover { epoch: e }, at)
                .unwrap();
        }
        at += 1;
        rl.local_mut().checkpoint(&keys[idx], id, at).unwrap();
    }
    let mut ranges = Vec::new();
    let mut from = 0;
    while let Some(r) = rl.serve_range(id, from).unwrap() {
        from = r.ck.seq + 1;
        ranges.push(r);
    }
    ranges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary per-writer record counts, an arbitrary interleaving of
    /// range deliveries, and gratuitous redelivery: the merged digest is
    /// identical to the canonical in-order ingest.
    #[test]
    fn merged_digest_is_order_independent(
        c0 in 0u64..6, c1 in 0u64..6, c2 in 0u64..6,
        d0 in 0u64..6, d1 in 0u64..6, d2 in 0u64..6,
        order_seed in any::<u64>(),
    ) {
        let keys = keys();
        let resolve = resolve_with(&keys);
        let case = format!("merge-{c0}{c1}{c2}{d0}{d1}{d2}-{order_seed:x}");
        let all: Vec<Vec<RangeData>> = [(c0, d0), (c1, d1), (c2, d2)]
            .iter()
            .enumerate()
            .map(|(i, &counts)| writer_ranges(&case, i, counts, &keys))
            .collect();

        // Follower A: seeded interleaving across writers (per-writer order
        // preserved — replication never reorders within a shard).
        let (mut a, _) =
            ReplicatedLedger::open(tmpdir(&format!("{case}-fa")), "F-A", cfg(), &resolve).unwrap();
        let mut pending: Vec<VecDeque<RangeData>> =
            all.iter().map(|rs| rs.iter().cloned().collect()).collect();
        let mut s = order_seed;
        while pending.iter().any(|q| !q.is_empty()) {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = ((s >> 33) as usize) % pending.len();
            if let Some(r) = pending[pick].pop_front() {
                a.ingest_range(&r, &resolve).unwrap();
                if s & 1 == 0 {
                    // Redelivery must be a no-op.
                    prop_assert_eq!(a.ingest_range(&r, &resolve).unwrap(), 0);
                }
            }
        }

        // Follower B: canonical writer-by-writer order.
        let (mut b, _) =
            ReplicatedLedger::open(tmpdir(&format!("{case}-fb")), "F-B", cfg(), &resolve).unwrap();
        for rs in &all {
            for r in rs {
                b.ingest_range(r, &resolve).unwrap();
            }
        }

        prop_assert_eq!(a.merged_digest().unwrap(), b.merged_digest().unwrap());
        prop_assert_eq!(a.total_records(), b.total_records());

        // The merged view is (writer, seq)-ordered.
        let merged = a.merged().unwrap();
        for pair in merged.windows(2) {
            let key = |m: &peace_ledger::MergedEntry| (m.writer.clone(), m.entry.seq);
            prop_assert!(key(&pair[0]) <= key(&pair[1]));
        }
    }
}

/// A real group-signed access transcript (the only record kind carrying a
/// session id, which drives merge dedup).
fn real_session() -> LoggedSession {
    let mut rng = StdRng::seed_from_u64(0x5E55);
    let mut no = NetworkOperator::new(ProtocolConfig::default(), &mut rng);
    let gid = no.register_group("org", &mut rng);
    let (gm_bundle, ttp_bundle) = no.issue_shares(gid, 2, &mut rng).unwrap();
    let mut gm = GroupManager::new(gid);
    gm.receive_bundle(&gm_bundle, no.npk()).unwrap();
    let mut ttp = Ttp::new();
    ttp.receive_bundle(&ttp_bundle, no.npk()).unwrap();
    let uid = UserId("alice".into());
    let mut alice = UserClient::new(uid.clone(), *no.gpk(), *no.npk(), *no.config(), &mut rng);
    let assignment = gm.assign(&uid).unwrap();
    let delivery = ttp.deliver(assignment.index, &uid).unwrap();
    alice.enroll(&assignment, &delivery).unwrap();
    let mut router = no.provision_router("MR-1", u64::MAX / 2, &mut rng);
    let beacon = router.beacon(1_000, &mut rng);
    let req = alice.request_access(&beacon, 1_050, &mut rng).unwrap();
    router.process_access_request(&req, 1_100).unwrap();
    router.drain_log().remove(0)
}

/// The same session reported through two different NOs (a router that
/// failed over mid-ack): both followers keep exactly one copy, and both
/// pick the same winner — the lexicographically first writer.
#[test]
fn duplicate_session_dedup_is_deterministic() {
    let keys = keys();
    let resolve = resolve_with(&keys);
    let session = real_session();

    let mut ranges = Vec::new();
    for idx in [0usize, 1] {
        let id = WRITERS[idx];
        let (mut rl, _) =
            ReplicatedLedger::open(tmpdir(&format!("dedup-w{idx}")), id, cfg(), &resolve).unwrap();
        rl.local_mut()
            .append(
                LedgerRecord::Access(AccessRecord {
                    router: "MR-1".into(),
                    session: session.clone(),
                }),
                2_000 + idx as u64,
            )
            .unwrap();
        rl.local_mut().checkpoint(&keys[idx], id, 3_000).unwrap();
        ranges.push(rl.serve_range(id, 0).unwrap().unwrap());
    }

    let digest_for = |name: &str, order: [usize; 2]| {
        let (mut f, _) = ReplicatedLedger::open(tmpdir(name), "F-X", cfg(), &resolve).unwrap();
        for i in order {
            f.ingest_range(&ranges[i], &resolve).unwrap();
        }
        let merged = f.merged().unwrap();
        let access: Vec<_> = merged
            .iter()
            .filter(|m| matches!(m.entry.record, LedgerRecord::Access(_)))
            .collect();
        assert_eq!(access.len(), 1, "dedup keeps exactly one transcript");
        assert_eq!(access[0].writer, "NO-0", "first writer in merge order wins");
        f.merged_digest().unwrap()
    };

    assert_eq!(
        digest_for("dedup-fwd", [0, 1]),
        digest_for("dedup-rev", [1, 0])
    );
}

/// The digest sees through the writable/mirror distinction: a writer's
/// own replica and a follower holding its mirrored shard agree once the
/// follower also lacks nothing.
#[test]
fn writer_and_follower_agree_on_single_shard_digest() {
    let keys = keys();
    let resolve = resolve_with(&keys);
    let id = WRITERS[0];
    let (mut w, _) = ReplicatedLedger::open(tmpdir("agree-writer"), id, cfg(), &resolve).unwrap();
    for e in 0..4 {
        w.local_mut()
            .append(LedgerRecord::EpochRollover { epoch: e }, 1_000 + e)
            .unwrap();
    }
    w.local_mut().checkpoint(&keys[0], id, 2_000).unwrap();
    let range = w.serve_range(id, 0).unwrap().unwrap();

    let (mut f, _) =
        ReplicatedLedger::open(tmpdir("agree-follower"), "F-A", cfg(), &resolve).unwrap();
    f.ingest_range(&range, &resolve).unwrap();
    assert_eq!(w.merged_digest().unwrap(), f.merged_digest().unwrap());

    // And the mirror shard survives a close/reopen byte-for-byte.
    let dir = f.dir().to_path_buf();
    drop(f);
    let (f2, _) = ReplicatedLedger::open(&dir, "F-A", cfg(), &resolve).unwrap();
    assert_eq!(w.merged_digest().unwrap(), f2.merged_digest().unwrap());

    let report = peace_ledger::verify_replica(&dir, &resolve).unwrap();
    assert!(report.checkpoints_verified() >= 1);
    let _ = Ledger::open(dir.join(format!("shard-{id}")), cfg()).unwrap();
}
