//! Ledger record types and their canonical wire encoding.
//!
//! Every accountability-relevant event in a PEACE deployment becomes one
//! [`LedgerRecord`] wrapped in an [`Entry`] (sequence number + wall-clock
//! stamp). Records carry only privacy-safe material: session transcripts
//! hold the signed payload and group signature (what NO needs for an
//! audit), never a user identity; post-audit attributions name a *group*
//! and share index, which is exactly the NO-side boundary of §IV.D.

use peace_groupsig::RevocationToken;
use peace_protocol::audit::LoggedSession;
use peace_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::checkpoint::Checkpoint;

/// The index-relevant facts of one record, extracted without
/// deserializing any group elements.
///
/// Recovery builds its in-memory indexes from these. The expensive parts
/// of a record — curve points inside group signatures and revocation
/// tokens, each costing a field square root plus a subgroup check to
/// decode — stay on disk until [`get`](crate::Ledger::get) actually
/// needs them. The frame CRC and the hash chain still cover every byte,
/// so a shallow scan keeps the full crash-recovery and tamper-evidence
/// guarantees; only the structural validation of group elements moves
/// from open-time to read-time.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexFacts {
    /// An access transcript: reporting router + canonical session-id
    /// bytes (the log key).
    Access {
        /// The reporting router.
        router: String,
        /// `SessionId::to_bytes()` of the logged session.
        session_id: Vec<u8>,
    },
    /// User/router revocations carry nothing the indexes need.
    Revocation,
    /// An epoch rollover mark.
    EpochRollover {
        /// The new epoch number.
        epoch: u64,
    },
    /// A full checkpoint (cheap to decode: no group elements).
    Checkpoint(Checkpoint),
    /// A post-audit attribution.
    Attribution {
        /// Sequence number of the attributed access record.
        session_seq: u64,
        /// The responsible user group.
        group: u32,
    },
}

/// The envelope and index facts of one entry, decoded shallowly from its
/// frame payload (see [`IndexFacts`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ShallowEntry {
    /// Ledger-wide sequence number.
    pub seq: u64,
    /// Wall-clock milliseconds when the record was appended.
    pub at_ms: u64,
    /// Coarse record classification.
    pub kind: RecordKind,
    /// What the recovery indexes need from the record body.
    pub facts: IndexFacts,
}

impl ShallowEntry {
    /// Parses the envelope and index facts from an entry payload without
    /// touching any group-element bytes. Trailing payload bytes past the
    /// facts are intentionally left unread — the frame CRC already
    /// guards them.
    pub fn parse(payload: &[u8]) -> peace_wire::Result<Self> {
        let mut r = Reader::new(payload);
        let seq = r.get_u64()?;
        let at_ms = r.get_u64()?;
        let (kind, facts) = match r.get_u8()? {
            tag::ACCESS => {
                let router = r.get_str()?;
                // SessionId encodes as its two DH-share byte strings;
                // its canonical bytes are their concatenation.
                let responder = r.get_bytes()?;
                let mut session_id = responder.to_vec();
                session_id.extend_from_slice(r.get_bytes()?);
                (
                    RecordKind::Access,
                    IndexFacts::Access { router, session_id },
                )
            }
            tag::USER_REVOCATION => (RecordKind::UserRevocation, IndexFacts::Revocation),
            tag::ROUTER_REVOCATION => (RecordKind::RouterRevocation, IndexFacts::Revocation),
            tag::EPOCH_ROLLOVER => (
                RecordKind::EpochRollover,
                IndexFacts::EpochRollover {
                    epoch: r.get_u64()?,
                },
            ),
            tag::CHECKPOINT => (
                RecordKind::Checkpoint,
                IndexFacts::Checkpoint(Checkpoint::decode(&mut r)?),
            ),
            tag::ATTRIBUTION => (
                RecordKind::Attribution,
                IndexFacts::Attribution {
                    session_seq: r.get_u64()?,
                    group: r.get_u32()?,
                },
            ),
            _ => return Err(WireError::Invalid("ledger record tag")),
        };
        Ok(Self {
            seq,
            at_ms,
            kind,
            facts,
        })
    }
}

mod tag {
    pub const ACCESS: u8 = 1;
    pub const USER_REVOCATION: u8 = 2;
    pub const ROUTER_REVOCATION: u8 = 3;
    pub const EPOCH_ROLLOVER: u8 = 4;
    pub const CHECKPOINT: u8 = 5;
    pub const ATTRIBUTION: u8 = 6;
}

/// An access transcript: which router logged the session, plus the full
/// audit material (M.2 payload + group signature).
#[derive(Clone, Debug, PartialEq)]
pub struct AccessRecord {
    /// The reporting router (`MR_k`).
    pub router: String,
    /// The logged session exactly as the router recorded it.
    pub session: LoggedSession,
}

/// The accountability events a ledger persists.
// Access dominates both the size and the frequency of real logs, so
// boxing it would put a heap allocation on the append hot path to save
// stack bytes on the rare small variants.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum LedgerRecord {
    /// A session access transcript reported by a mesh router.
    Access(AccessRecord),
    /// A member key was revoked (URL grew).
    UserRevocation {
        /// The revoked token `A_{i,j}`.
        token: RevocationToken,
        /// URL version after the revocation.
        url_version: u64,
    },
    /// A router certificate was revoked (CRL grew).
    RouterRevocation {
        /// The revoked certificate serial.
        serial: u64,
        /// CRL version after the revocation.
        crl_version: u64,
    },
    /// The system key was rotated (all member keys invalidated, URL reset).
    EpochRollover {
        /// The new epoch number.
        epoch: u64,
    },
    /// A signed integrity checkpoint (see [`Checkpoint`]).
    Checkpoint(Checkpoint),
    /// A post-audit attribution: the Open/Audit sweep matched the access
    /// transcript at `session_seq` to a group and share index. Appending
    /// these (rather than mutating anything) keeps the log append-only
    /// while enabling group-indexed queries.
    Attribution {
        /// Sequence number of the attributed [`LedgerRecord::Access`].
        session_seq: u64,
        /// The responsible user group.
        group: u32,
        /// The share slot within the group (`[i, j]`).
        slot: u32,
    },
}

/// Coarse record classification for indexes, queries, and exports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// [`LedgerRecord::Access`].
    Access,
    /// [`LedgerRecord::UserRevocation`].
    UserRevocation,
    /// [`LedgerRecord::RouterRevocation`].
    RouterRevocation,
    /// [`LedgerRecord::EpochRollover`].
    EpochRollover,
    /// [`LedgerRecord::Checkpoint`].
    Checkpoint,
    /// [`LedgerRecord::Attribution`].
    Attribution,
}

impl RecordKind {
    /// Stable lowercase name (JSON exports, CLI filters).
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Access => "access",
            RecordKind::UserRevocation => "user-revocation",
            RecordKind::RouterRevocation => "router-revocation",
            RecordKind::EpochRollover => "epoch-rollover",
            RecordKind::Checkpoint => "checkpoint",
            RecordKind::Attribution => "attribution",
        }
    }

    /// Parses a CLI filter name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "access" => RecordKind::Access,
            "user-revocation" => RecordKind::UserRevocation,
            "router-revocation" => RecordKind::RouterRevocation,
            "epoch-rollover" => RecordKind::EpochRollover,
            "checkpoint" => RecordKind::Checkpoint,
            "attribution" => RecordKind::Attribution,
            _ => return None,
        })
    }
}

impl LedgerRecord {
    /// The record's [`RecordKind`].
    pub fn kind(&self) -> RecordKind {
        match self {
            LedgerRecord::Access(_) => RecordKind::Access,
            LedgerRecord::UserRevocation { .. } => RecordKind::UserRevocation,
            LedgerRecord::RouterRevocation { .. } => RecordKind::RouterRevocation,
            LedgerRecord::EpochRollover { .. } => RecordKind::EpochRollover,
            LedgerRecord::Checkpoint(_) => RecordKind::Checkpoint,
            LedgerRecord::Attribution { .. } => RecordKind::Attribution,
        }
    }
}

impl Encode for LedgerRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            LedgerRecord::Access(a) => {
                w.put_u8(tag::ACCESS);
                w.put_str(&a.router);
                a.session.encode(w);
            }
            LedgerRecord::UserRevocation { token, url_version } => {
                w.put_u8(tag::USER_REVOCATION);
                w.put_bytes(&token.to_bytes());
                w.put_u64(*url_version);
            }
            LedgerRecord::RouterRevocation {
                serial,
                crl_version,
            } => {
                w.put_u8(tag::ROUTER_REVOCATION);
                w.put_u64(*serial);
                w.put_u64(*crl_version);
            }
            LedgerRecord::EpochRollover { epoch } => {
                w.put_u8(tag::EPOCH_ROLLOVER);
                w.put_u64(*epoch);
            }
            LedgerRecord::Checkpoint(c) => {
                w.put_u8(tag::CHECKPOINT);
                c.encode(w);
            }
            LedgerRecord::Attribution {
                session_seq,
                group,
                slot,
            } => {
                w.put_u8(tag::ATTRIBUTION);
                w.put_u64(*session_seq);
                w.put_u32(*group);
                w.put_u32(*slot);
            }
        }
    }
}

impl Decode for LedgerRecord {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        Ok(match r.get_u8()? {
            tag::ACCESS => LedgerRecord::Access(AccessRecord {
                router: r.get_str()?,
                session: LoggedSession::decode(r)?,
            }),
            tag::USER_REVOCATION => LedgerRecord::UserRevocation {
                token: RevocationToken::from_bytes(r.get_bytes()?)
                    .ok_or(WireError::Invalid("revocation token"))?,
                url_version: r.get_u64()?,
            },
            tag::ROUTER_REVOCATION => LedgerRecord::RouterRevocation {
                serial: r.get_u64()?,
                crl_version: r.get_u64()?,
            },
            tag::EPOCH_ROLLOVER => LedgerRecord::EpochRollover {
                epoch: r.get_u64()?,
            },
            tag::CHECKPOINT => LedgerRecord::Checkpoint(Checkpoint::decode(r)?),
            tag::ATTRIBUTION => LedgerRecord::Attribution {
                session_seq: r.get_u64()?,
                group: r.get_u32()?,
                slot: r.get_u32()?,
            },
            _ => return Err(WireError::Invalid("ledger record tag")),
        })
    }
}

/// One ledger entry: a record plus its position and wall-clock stamp.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Ledger-wide sequence number (dense, starting at 0).
    pub seq: u64,
    /// Wall-clock milliseconds when the record was appended.
    pub at_ms: u64,
    /// The accountability record.
    pub record: LedgerRecord,
}

impl Entry {
    /// The same facts [`ShallowEntry::parse`] extracts from this entry's
    /// wire form, derived from the decoded record (append-path indexing).
    pub fn to_shallow(&self) -> ShallowEntry {
        let facts = match &self.record {
            LedgerRecord::Access(a) => IndexFacts::Access {
                router: a.router.clone(),
                session_id: a.session.session_id.to_bytes(),
            },
            LedgerRecord::UserRevocation { .. } | LedgerRecord::RouterRevocation { .. } => {
                IndexFacts::Revocation
            }
            LedgerRecord::EpochRollover { epoch } => IndexFacts::EpochRollover { epoch: *epoch },
            LedgerRecord::Checkpoint(ck) => IndexFacts::Checkpoint(ck.clone()),
            LedgerRecord::Attribution {
                session_seq, group, ..
            } => IndexFacts::Attribution {
                session_seq: *session_seq,
                group: *group,
            },
        };
        ShallowEntry {
            seq: self.seq,
            at_ms: self.at_ms,
            kind: self.record.kind(),
            facts,
        }
    }
}

impl Encode for Entry {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.seq);
        w.put_u64(self.at_ms);
        self.record.encode(w);
    }
}

impl Decode for Entry {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        Ok(Self {
            seq: r.get_u64()?,
            at_ms: r.get_u64()?,
            record: LedgerRecord::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peace_wire::{Decode, Encode};

    #[test]
    fn simple_records_roundtrip() {
        let records = [
            LedgerRecord::RouterRevocation {
                serial: 7,
                crl_version: 3,
            },
            LedgerRecord::EpochRollover { epoch: 2 },
            LedgerRecord::Attribution {
                session_seq: 11,
                group: 4,
                slot: 9,
            },
        ];
        for rec in records {
            let e = Entry {
                seq: 5,
                at_ms: 123,
                record: rec,
            };
            assert_eq!(Entry::from_wire(&e.to_wire()).unwrap(), e);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut w = Writer::new();
        w.put_u64(0);
        w.put_u64(0);
        w.put_u8(99);
        assert!(Entry::from_wire(&w.into_bytes()).is_err());
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in [
            RecordKind::Access,
            RecordKind::UserRevocation,
            RecordKind::RouterRevocation,
            RecordKind::EpochRollover,
            RecordKind::Checkpoint,
            RecordKind::Attribution,
        ] {
            assert_eq!(RecordKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(RecordKind::parse("bogus"), None);
    }
}
