//! CRC-32 (IEEE 802.3 polynomial, reflected) for frame guards.
//!
//! The ledger uses CRC-32 as a *torn-write and bit-rot detector*, not as a
//! cryptographic check — tamper evidence comes from the SHA-256 record
//! chain and the ECDSA checkpoints on top of it. CRC-32 detects all
//! single-bit errors and all burst errors up to 32 bits, which is exactly
//! the failure shape of an interrupted `write(2)`.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_always_detected() {
        let data = b"the peace accountability ledger".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut m = data.clone();
                m[byte] ^= 1 << bit;
                assert_ne!(crc32(&m), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
