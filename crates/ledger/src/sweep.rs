//! Batched Open/Audit sweeps over a ledger time range.
//!
//! An audit sweep collects every access transcript in a time window,
//! replays all their group signatures through NO's batched opener
//! ([`NetworkOperator::audit_batch`], which shares Miller-loop and
//! final-exponentiation work across records), and appends one
//! [`LedgerRecord::Attribution`] per resolved transcript. Attribution
//! rides the same append-only chain as everything else, so the audit
//! trail of *who audited what* is itself tamper-evident.

use peace_protocol::audit::AuditFinding;
use peace_protocol::entities::NetworkOperator;

use crate::record::{Entry, LedgerRecord, RecordKind};
use crate::store::{Ledger, LedgerQuery};
use crate::Result;

/// Outcome of one sweep: which access records resolved to which group.
#[derive(Clone, Debug, Default)]
pub struct SweepOutcome {
    /// Access records examined (in the window, not yet attributed).
    pub examined: usize,
    /// `(access seq, finding)` for every transcript the batch opener
    /// matched against a revocation-token row.
    pub resolved: Vec<(u64, AuditFinding)>,
    /// Sequence numbers of transcripts no epoch's grt could open
    /// (foreign or forged signatures).
    pub unresolved: Vec<u64>,
}

/// Runs a batched Open/Audit over every not-yet-attributed access record
/// stamped within `[since_ms, until_ms]`. Does not modify the ledger —
/// pass the outcome to [`attribute_sweep`] to persist attributions.
pub fn audit_sweep(
    no: &NetworkOperator,
    ledger: &Ledger,
    since_ms: u64,
    until_ms: u64,
) -> Result<SweepOutcome> {
    let sweep_start = std::time::Instant::now();
    let entries = ledger.query(&LedgerQuery {
        kind: Some(RecordKind::Access),
        since_ms: Some(since_ms),
        until_ms: Some(until_ms),
        ..LedgerQuery::default()
    })?;
    let pending: Vec<&Entry> = entries
        .iter()
        .filter(|e| !ledger.is_attributed(e.seq))
        .collect();
    let items: Vec<(&[u8], &peace_groupsig::GroupSignature)> = pending
        .iter()
        .filter_map(|e| match &e.record {
            LedgerRecord::Access(a) => Some((a.session.signed_payload.as_slice(), &a.session.gsig)),
            _ => None,
        })
        .collect();
    let findings = no.audit_batch(&items);
    let mut out = SweepOutcome {
        examined: pending.len(),
        ..SweepOutcome::default()
    };
    for (entry, finding) in pending.iter().zip(findings) {
        match finding {
            Some(f) => out.resolved.push((entry.seq, f)),
            None => out.unresolved.push(entry.seq),
        }
    }
    crate::timing::sweep_us().record_since(sweep_start);
    Ok(out)
}

/// Persists a sweep's findings as [`LedgerRecord::Attribution`] records,
/// skipping any access record attributed in the meantime. Returns the
/// number of attributions appended.
pub fn attribute_sweep(ledger: &mut Ledger, outcome: &SweepOutcome, at_ms: u64) -> Result<usize> {
    let mut appended = 0;
    for (seq, finding) in &outcome.resolved {
        if ledger.is_attributed(*seq) {
            continue;
        }
        ledger.append(
            LedgerRecord::Attribution {
                session_seq: *seq,
                group: finding.group.0,
                slot: finding.index.slot,
            },
            at_ms,
        )?;
        appended += 1;
    }
    ledger.flush()?;
    Ok(appended)
}
