//! The durable ledger: segment management, crash recovery, rotation,
//! compaction, signed checkpoints, and indexed queries.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use peace_ecdsa::{SigningKey, VerifyingKey};
use peace_wire::{Decode, Encode, Reader, Writer};

use crate::checkpoint::Checkpoint;
use crate::record::{Entry, IndexFacts, LedgerRecord, RecordKind, ShallowEntry};
use crate::segment::{
    extend_chain, frame, genesis_chain, scan, scan_shallow, ChainMode, SegmentHeader,
    ShallowScanResult, FRAME_OVERHEAD, SEGMENT_HEADER_LEN,
};
use crate::{LedgerError, Result};

/// When appended frames hit the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fdatasync` after every append — maximum durability, one syscall
    /// per record.
    Always,
    /// Sync only on [`Ledger::flush`], rotation, checkpoints, and drop.
    /// A crash may lose the unsynced tail, but recovery still yields a
    /// valid prefix (frames are single-`write_all`, so the tail tears
    /// cleanly).
    #[default]
    OnFlush,
}

/// Ledger tunables.
#[derive(Clone, Copy, Debug)]
pub struct LedgerConfig {
    /// Rotate to a fresh segment once the current file would exceed this.
    pub segment_max_bytes: u64,
    /// Reject records whose encoded payload exceeds this.
    pub max_record_bytes: u32,
    /// Durability policy for appends.
    pub sync: SyncPolicy,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        Self {
            segment_max_bytes: 256 * 1024,
            max_record_bytes: 1 << 20,
            sync: SyncPolicy::OnFlush,
        }
    }
}

/// What [`Ledger::open`] found and repaired.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Segments on disk after recovery.
    pub segments: usize,
    /// Records recovered.
    pub records: u64,
    /// Bytes of torn tail discarded from the last segment (0 on a clean
    /// open).
    pub torn_bytes: u64,
    /// Description of the tail flaw, if one was repaired.
    pub tail_flaw: Option<&'static str>,
    /// When [`Ledger::open_resumed`] trusted an ECDSA-signed checkpoint,
    /// the sequence number the chain replay resumed from; `None` on a
    /// full from-the-head replay.
    pub resumed_from: Option<u64>,
    /// When [`Ledger::open_resumed`] found a `resume.pch` sidecar but had
    /// to reject it and fall back to a full replay, the rejection reason
    /// (`hint_crc_mismatch`, `hint_bad_signature`, `hint_frame_not_found`,
    /// …). `None` when the hint was used or simply absent.
    pub resume_fallback: Option<&'static str>,
}

/// A point-in-time description of the chain head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerHead {
    /// Sequence number the next append will get.
    pub next_seq: u64,
    /// First retained sequence number (> 0 after compaction).
    pub first_seq: u64,
    /// Running chain value over all retained records.
    pub chain: [u8; 32],
    /// Number of segment files.
    pub segments: usize,
}

/// Outcome of [`Ledger::compact`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// Whole segment files removed.
    pub segments_removed: usize,
    /// Records dropped with them.
    pub records_removed: u64,
}

/// An indexed query over the ledger. All criteria are conjunctive; unset
/// fields match everything.
#[derive(Clone, Debug, Default)]
pub struct LedgerQuery {
    /// Restrict to records stamped in this key epoch.
    pub epoch: Option<u64>,
    /// Restrict to access records reported by this router.
    pub router: Option<String>,
    /// Restrict to access records attributed (by a prior audit sweep) to
    /// this user group. NO-only boundary: the result still names no user.
    pub group: Option<u32>,
    /// Inclusive lower bound on the record wall-clock stamp.
    pub since_ms: Option<u64>,
    /// Inclusive upper bound on the record wall-clock stamp.
    pub until_ms: Option<u64>,
    /// Restrict to one record kind.
    pub kind: Option<RecordKind>,
}

struct SegmentMeta {
    base_seq: u64,
    path: PathBuf,
}

struct EntryMeta {
    at_ms: u64,
    kind: RecordKind,
    seg: usize,
    offset: u64,
    frame_len: usize,
}

/// The durable, hash-chained accountability ledger.
///
/// See the crate docs for the format; in short: append-only CRC-guarded
/// frames in rotating segment files, a SHA-256 running chain, ECDSA
/// checkpoints, and deterministic torn-tail recovery on open.
pub struct Ledger {
    dir: PathBuf,
    cfg: LedgerConfig,
    segments: Vec<SegmentMeta>,
    file: File,
    seg_bytes: u64,
    first_seq: u64,
    next_seq: u64,
    chain: [u8; 32],
    locs: Vec<EntryMeta>,
    by_router: HashMap<String, Vec<u64>>,
    by_group: HashMap<u32, Vec<u64>>,
    by_session: HashMap<Vec<u8>, u64>,
    epoch_marks: Vec<(u64, u64)>,
    attributed: HashSet<u64>,
    last_checkpoint: Option<(u64, [u8; 32])>,
    dirty: bool,
}

fn segment_path(dir: &Path, base_seq: u64) -> PathBuf {
    dir.join(format!("seg-{base_seq:016x}.pls"))
}

fn list_segments(dir: &Path) -> Result<Vec<SegmentMeta>> {
    let mut out = Vec::new();
    for ent in std::fs::read_dir(dir)? {
        let ent = ent?;
        let name = ent.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(hex) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".pls"))
        else {
            continue;
        };
        let Ok(base_seq) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        out.push(SegmentMeta {
            base_seq,
            path: ent.path(),
        });
    }
    out.sort_by_key(|s| s.base_seq);
    Ok(out)
}

fn read_file(path: &Path) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Per-segment recovery plan, decided before the (possibly parallel)
/// scan fan-out.
#[derive(Clone, Copy)]
enum ScanPlan {
    /// Replay and verify the SHA-256 chain from the segment header.
    Verify,
    /// Prefix segment attested by a later signed checkpoint: CRC + index
    /// facts only, no chain replay.
    Trusted,
    /// The segment holding the signed checkpoint: skip hashing up to its
    /// frame, then seed the chain from the attested value and replay on.
    Resume { offset: usize, chain: [u8; 32] },
}

/// One scanned segment: parsed header, shallow scan outcome, file size.
struct SegScan {
    header: SegmentHeader,
    res: ShallowScanResult,
    file_len: u64,
}

fn scan_segment(seg: &SegmentMeta, plan: ScanPlan, max_record: u32) -> Result<SegScan> {
    let bytes = read_file(&seg.path)?;
    let header = SegmentHeader::parse(&bytes).ok_or(LedgerError::Corrupt {
        segment: seg.base_seq,
        offset: 0,
        what: "segment header unreadable",
    })?;
    if header.base_seq != seg.base_seq {
        return Err(LedgerError::Corrupt {
            segment: seg.base_seq,
            offset: 0,
            what: "segment header/filename base mismatch",
        });
    }
    let mode = match plan {
        ScanPlan::Verify => ChainMode::Replay(header.prev_chain),
        ScanPlan::Trusted => ChainMode::Skip,
        ScanPlan::Resume { offset, chain } => ChainMode::Resume { offset, chain },
    };
    let res = scan_shallow(
        &bytes,
        SEGMENT_HEADER_LEN,
        header.base_seq,
        mode,
        max_record,
    );
    Ok(SegScan {
        header,
        res,
        file_len: bytes.len() as u64,
    })
}

/// Scans every segment, fanning the independent per-segment work
/// (read + CRC + shallow decode + chunked SHA-256 chain replay from each
/// header's pinned seed) across threads when the machine and the log are
/// both big enough. Cross-segment chain stitching happens afterwards in
/// sequence order.
fn scan_segments(
    segments: &[SegmentMeta],
    plans: &[ScanPlan],
    max_record: u32,
) -> Vec<Result<SegScan>> {
    let n = segments.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 || n < 2 {
        return segments
            .iter()
            .zip(plans)
            .map(|(s, p)| scan_segment(s, *p, max_record))
            .collect();
    }
    let mut out: Vec<Result<SegScan>> = (0..n)
        .map(|_| {
            Err(LedgerError::Corrupt {
                segment: 0,
                offset: 0,
                what: "segment scan worker never ran",
            })
        })
        .collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|sc| {
        for (ci, out_chunk) in out.chunks_mut(chunk).enumerate() {
            sc.spawn(move || {
                for (off, slot) in out_chunk.iter_mut().enumerate() {
                    let i = ci * chunk + off;
                    *slot = scan_segment(&segments[i], plans[i], max_record);
                }
            });
        }
    });
    out
}

/// Advisory sidecar naming the latest signed checkpoint's frame, written
/// on every [`Ledger::checkpoint`] so [`Ledger::open_resumed`] can find
/// its resume point without scanning. Self-checked (magic + CRC) and
/// cross-checked against the log before use; stale or damaged hints just
/// fall back to a full from-the-head replay.
const RESUME_HINT_FILE: &str = "resume.pch";
const HINT_MAGIC: [u8; 4] = *b"PRH1";

struct ResumeHint {
    base_seq: u64,
    offset: u64,
    ck: Checkpoint,
}

fn write_resume_hint(dir: &Path, base_seq: u64, offset: u64, ck: &Checkpoint) -> Result<()> {
    let mut w = Writer::new();
    w.put_fixed(&HINT_MAGIC);
    w.put_u64(base_seq);
    w.put_u64(offset);
    ck.encode(&mut w);
    let crc = crate::crc::crc32(w.as_bytes());
    w.put_u32(crc);
    std::fs::write(dir.join(RESUME_HINT_FILE), w.into_bytes())?;
    Ok(())
}

/// Maps a checkpoint signer name to its trusted verifying key.
type KeyResolver<'a> = &'a dyn Fn(&str) -> Option<VerifyingKey>;

/// Reason the sidecar hint was absent — distinguished from damage so the
/// caller can skip fallback accounting on a first-ever open.
const HINT_ABSENT: &str = "hint_absent";

fn read_resume_hint(
    dir: &Path,
    resolve: KeyResolver<'_>,
) -> core::result::Result<ResumeHint, &'static str> {
    let bytes = match std::fs::read(dir.join(RESUME_HINT_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(HINT_ABSENT),
        Err(_) => return Err("hint_unreadable"),
    };
    if bytes.len() < 4 {
        return Err("hint_truncated");
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_be_bytes(crc_bytes.try_into().map_err(|_| "hint_truncated")?);
    if crate::crc::crc32(body) != stored {
        return Err("hint_crc_mismatch");
    }
    let mut r = Reader::new(body);
    if r.get_fixed(4).map_err(|_| "hint_truncated")? != HINT_MAGIC {
        return Err("hint_bad_magic");
    }
    let base_seq = r.get_u64().map_err(|_| "hint_undecodable")?;
    let offset = r.get_u64().map_err(|_| "hint_undecodable")?;
    let ck = Checkpoint::decode(&mut r).map_err(|_| "hint_undecodable")?;
    let key = resolve(&ck.signer).ok_or("hint_unknown_signer")?;
    if !ck.verify(&key) {
        return Err("hint_bad_signature");
    }
    Ok(ResumeHint {
        base_seq,
        offset,
        ck,
    })
}

/// Records a resumed-open fallback in the process-wide registry: counter
/// bump plus an event naming the rejection reason, so a fleet operator
/// can see hint damage instead of just a silently slower open.
fn note_resume_fallback(reason: &'static str) {
    crate::timing::resume_fallback().inc();
    crate::timing::replication_event("ledger.resume_fallback", reason);
}

impl Ledger {
    /// Opens (or creates) the ledger in `dir`, running crash recovery:
    /// segments are validated in order, the chain is replayed across
    /// segment boundaries, and a torn tail in the *last* segment is
    /// truncated away. Damage anywhere else is refused with
    /// [`LedgerError::Corrupt`] / [`LedgerError::ChainBroken`] — a crash
    /// can only tear the end of the log, so interior damage is tampering.
    pub fn open(dir: impl AsRef<Path>, cfg: LedgerConfig) -> Result<(Self, RecoveryReport)> {
        Self::open_inner(dir.as_ref(), cfg, None)
    }

    /// Like [`open`](Self::open), but O(tail) on the hash chain: when the
    /// `resume.pch` sidecar names a checkpoint whose ECDSA signature
    /// verifies under `resolve`, the SHA-256 chain replay starts at that
    /// checkpoint's frame instead of the log head. Every frame is still
    /// CRC-checked and shallow-decoded for the indexes; only the hashing
    /// of the attested prefix is skipped — the signature vouches for it.
    /// A missing, damaged, or stale hint falls back to the full replay
    /// of [`open`](Self::open), so this is always safe to prefer when a
    /// trusted verifying key is available.
    pub fn open_resumed(
        dir: impl AsRef<Path>,
        cfg: LedgerConfig,
        resolve: impl Fn(&str) -> Option<VerifyingKey>,
    ) -> Result<(Self, RecoveryReport)> {
        Self::open_inner(dir.as_ref(), cfg, Some(&resolve))
    }

    fn open_inner(
        dir: &Path,
        cfg: LedgerConfig,
        resolve: Option<KeyResolver<'_>>,
    ) -> Result<(Self, RecoveryReport)> {
        let recover_start = std::time::Instant::now();
        let dir = dir.to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir)?;
        let mut report = RecoveryReport::default();

        // A crash between segment-file creation and the (synced) header
        // write can leave a final segment with a *short* header; it holds
        // no records, so recovery discards it. A full-length header that
        // fails its CRC is damage, not a crash artifact — that case falls
        // through to the strict pass below and errors.
        if let Some(last) = segments.last() {
            let bytes = read_file(&last.path)?;
            if bytes.len() < SEGMENT_HEADER_LEN {
                report.torn_bytes += bytes.len() as u64;
                report.tail_flaw = Some("partial segment header");
                std::fs::remove_file(&last.path)?;
                segments.pop();
            }
        }

        if segments.is_empty() {
            let header = SegmentHeader {
                base_seq: 0,
                created_at: 0,
                prev_chain: genesis_chain(),
            };
            let path = segment_path(&dir, 0);
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)?;
            f.write_all(&header.to_bytes())?;
            f.sync_data()?;
            segments.push(SegmentMeta { base_seq: 0, path });
        }

        // An ECDSA-verified resume hint (when the caller supplied a key
        // resolver) lets the chain replay start at the attested
        // checkpoint instead of the log head. A damaged, stale, or
        // unverifiable hint falls back to the full replay — observably:
        // the reason lands in the report, a counter, and an event.
        let hint = match resolve {
            Some(res) => match read_resume_hint(&dir, res) {
                Ok(h) if segments.iter().any(|s| s.base_seq == h.base_seq) => Some(h),
                Ok(_) => {
                    report.resume_fallback = Some("hint_stale_segment");
                    note_resume_fallback("hint_stale_segment");
                    None
                }
                Err(HINT_ABSENT) => None,
                Err(reason) => {
                    report.resume_fallback = Some(reason);
                    note_resume_fallback(reason);
                    None
                }
            },
            None => None,
        };
        let plans: Vec<ScanPlan> = segments
            .iter()
            .map(|s| match &hint {
                Some(h) if s.base_seq < h.base_seq => ScanPlan::Trusted,
                Some(h) if s.base_seq == h.base_seq => ScanPlan::Resume {
                    offset: h.offset as usize,
                    chain: h.ck.chain,
                },
                _ => ScanPlan::Verify,
            })
            .collect();
        let scans = scan_segments(&segments, &plans, cfg.max_record_bytes);

        // The hint is advisory: if the scan did not find the exact
        // checkpoint frame it names (stale sidecar, torn tail before
        // it, compacted-away segment contents), redo a full replay.
        if let Some(h) = &hint {
            let found = segments
                .iter()
                .zip(&scans)
                .filter(|(seg, _)| seg.base_seq == h.base_seq)
                .any(|(_, scan)| match scan {
                    Ok(s) => s.res.entries.iter().any(|se| {
                        se.offset as u64 == h.offset
                            && matches!(&se.entry.facts,
                                        IndexFacts::Checkpoint(ck) if *ck == h.ck)
                    }),
                    Err(_) => false,
                });
            if !found {
                note_resume_fallback("hint_frame_not_found");
                let (ledger, mut rep) = Self::open_inner(&dir, cfg, None)?;
                rep.resume_fallback = Some("hint_frame_not_found");
                return Ok((ledger, rep));
            }
            report.resumed_from = Some(h.ck.seq);
        }

        let mut chain = [0u8; 32];
        let mut chain_live = false;
        let mut next_seq = 0u64;
        let mut first_seq = 0u64;
        let mut locs: Vec<EntryMeta> = Vec::new();
        let mut by_router: HashMap<String, Vec<u64>> = HashMap::new();
        let mut by_group: HashMap<u32, Vec<u64>> = HashMap::new();
        let mut by_session: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut epoch_marks: Vec<(u64, u64)> = Vec::new();
        let mut attributed: HashSet<u64> = HashSet::new();
        let mut last_checkpoint = None;
        let mut seg_bytes = 0u64;

        let count = segments.len();
        for (i, (seg, scan)) in segments.iter().zip(scans).enumerate() {
            let SegScan {
                header,
                res,
                file_len,
            } = scan?;
            if i == 0 {
                first_seq = header.base_seq;
                if header.base_seq == 0 && header.prev_chain != genesis_chain() {
                    return Err(LedgerError::ChainBroken { segment: 0 });
                }
            } else if header.base_seq != next_seq || (chain_live && header.prev_chain != chain) {
                return Err(LedgerError::ChainBroken {
                    segment: seg.base_seq,
                });
            }
            if let Some(flaw) = res.flaw {
                if i + 1 != count {
                    return Err(LedgerError::Corrupt {
                        segment: seg.base_seq,
                        offset: res.valid_len as u64,
                        what: flaw.describe(),
                    });
                }
                // Torn tail of the live segment: truncate it away.
                report.torn_bytes += file_len - res.valid_len as u64;
                report.tail_flaw = Some(flaw.describe());
                let f = OpenOptions::new().write(true).open(&seg.path)?;
                f.set_len(res.valid_len as u64)?;
                f.sync_data()?;
            }
            for se in &res.entries {
                index_shallow(
                    &se.entry,
                    &mut by_router,
                    &mut by_group,
                    &mut by_session,
                    &mut epoch_marks,
                    &mut attributed,
                    &mut last_checkpoint,
                );
                locs.push(EntryMeta {
                    at_ms: se.entry.at_ms,
                    kind: se.entry.kind,
                    seg: i,
                    offset: se.offset as u64,
                    frame_len: se.frame_len,
                });
            }
            chain = res.chain;
            chain_live = res.chain_live;
            next_seq = header.base_seq + res.entries.len() as u64;
            if i + 1 == count {
                seg_bytes = res.valid_len as u64;
            }
        }

        let last_path = segments
            .last()
            .map(|s| s.path.clone())
            .unwrap_or_else(|| segment_path(&dir, 0));
        let mut file = OpenOptions::new().write(true).open(&last_path)?;
        file.seek(SeekFrom::Start(seg_bytes))?;

        report.segments = segments.len();
        report.records = locs.len() as u64;
        crate::timing::recover_us().record_since(recover_start);
        Ok((
            Self {
                dir,
                cfg,
                segments,
                file,
                seg_bytes,
                first_seq,
                next_seq,
                chain,
                locs,
                by_router,
                by_group,
                by_session,
                epoch_marks,
                attributed,
                last_checkpoint,
                dirty: false,
            },
            report,
        ))
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The chain head.
    pub fn head(&self) -> LedgerHead {
        LedgerHead {
            next_seq: self.next_seq,
            first_seq: self.first_seq,
            chain: self.chain,
            segments: self.segments.len(),
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> u64 {
        self.locs.len() as u64
    }

    /// Whether the ledger holds no records.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Appends one record, returning its sequence number. The frame is
    /// written with a single `write_all`, so an abort mid-append can only
    /// leave a trailing partial frame, which the next open skips.
    pub fn append(&mut self, record: LedgerRecord, at_ms: u64) -> Result<u64> {
        let append_start = std::time::Instant::now();
        let entry = Entry {
            seq: self.next_seq,
            at_ms,
            record,
        };
        let payload = entry.try_to_wire()?;
        if payload.len() > self.cfg.max_record_bytes as usize {
            return Err(LedgerError::RecordTooLarge { len: payload.len() });
        }
        let framed = frame(&payload);
        if self.seg_bytes > SEGMENT_HEADER_LEN as u64
            && self.seg_bytes + framed.len() as u64 > self.cfg.segment_max_bytes
        {
            self.rotate(at_ms)?;
        }
        self.file.write_all(&framed)?;
        match self.cfg.sync {
            SyncPolicy::Always => {
                let fsync_start = std::time::Instant::now();
                self.file.sync_data()?;
                crate::timing::fsync_us().record_since(fsync_start);
            }
            SyncPolicy::OnFlush => self.dirty = true,
        }
        let seq = entry.seq;
        index_shallow(
            &entry.to_shallow(),
            &mut self.by_router,
            &mut self.by_group,
            &mut self.by_session,
            &mut self.epoch_marks,
            &mut self.attributed,
            &mut self.last_checkpoint,
        );
        self.locs.push(EntryMeta {
            at_ms,
            kind: entry.record.kind(),
            seg: self.segments.len() - 1,
            offset: self.seg_bytes,
            frame_len: framed.len(),
        });
        self.chain = extend_chain(&self.chain, &payload);
        self.seg_bytes += framed.len() as u64;
        self.next_seq += 1;
        crate::timing::append_us().record_since(append_start);
        Ok(seq)
    }

    /// Forces buffered appends to stable storage.
    pub fn flush(&mut self) -> Result<()> {
        if self.dirty {
            let fsync_start = std::time::Instant::now();
            self.file.sync_data()?;
            crate::timing::fsync_us().record_since(fsync_start);
            self.dirty = false;
        }
        Ok(())
    }

    /// Closes the current segment and starts a fresh one whose header pins
    /// the running chain.
    fn rotate(&mut self, at_ms: u64) -> Result<()> {
        self.file.sync_data()?;
        let header = SegmentHeader {
            base_seq: self.next_seq,
            created_at: at_ms,
            prev_chain: self.chain,
        };
        let path = segment_path(&self.dir, self.next_seq);
        let mut f = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)?;
        f.write_all(&header.to_bytes())?;
        f.sync_data()?;
        // Make the new directory entry durable before writing records
        // into it.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.segments.push(SegmentMeta {
            base_seq: self.next_seq,
            path,
        });
        self.file = f;
        self.seg_bytes = SEGMENT_HEADER_LEN as u64;
        self.dirty = false;
        Ok(())
    }

    /// Appends a signed checkpoint over the current head and syncs it to
    /// disk. The checkpoint covers every record before it; an auditor who
    /// trusts the signer's key can verify the whole retained chain from
    /// it.
    pub fn checkpoint(&mut self, key: &SigningKey, signer: &str, at_ms: u64) -> Result<Checkpoint> {
        let ck = Checkpoint::sign(key, signer, self.next_seq, self.chain, at_ms);
        self.append(LedgerRecord::Checkpoint(ck.clone()), at_ms)?;
        self.dirty = true;
        self.flush()?;
        // Name the checkpoint's frame in the advisory resume sidecar so
        // the next open can replay the chain from here instead of the
        // log head (see [`Ledger::open_resumed`]).
        if let Some(meta) = self.locs.last() {
            write_resume_hint(
                &self.dir,
                self.segments[meta.seg].base_seq,
                meta.offset,
                &ck,
            )?;
        }
        Ok(ck)
    }

    /// Sequence number covered by the most recent checkpoint, if any.
    pub fn last_checkpoint_seq(&self) -> Option<u64> {
        self.last_checkpoint.map(|(s, _)| s)
    }

    /// Drops whole leading segments whose records all precede `up_to`,
    /// provided a later signed checkpoint anchors the retained suffix
    /// (otherwise offline verification would have nothing to trust the
    /// first retained header against). The live segment is never dropped.
    pub fn compact(&mut self, up_to: u64) -> Result<CompactReport> {
        let mut cut = 0usize;
        while cut + 1 < self.segments.len() && self.segments[cut + 1].base_seq <= up_to {
            cut += 1;
        }
        if cut == 0 {
            return Ok(CompactReport {
                segments_removed: 0,
                records_removed: 0,
            });
        }
        let new_first = self.segments[cut].base_seq;
        match self.last_checkpoint {
            Some((seq, _)) if seq >= new_first => {}
            _ => {
                return Err(LedgerError::CannotCompact(
                    "no signed checkpoint anchors the retained suffix",
                ))
            }
        }
        for seg in &self.segments[..cut] {
            std::fs::remove_file(&seg.path)?;
        }
        self.segments.drain(..cut);
        let removed = (new_first - self.first_seq) as usize;
        self.locs.drain(..removed);
        for m in &mut self.locs {
            m.seg -= cut;
        }
        self.first_seq = new_first;
        self.by_router.retain(|_, v| {
            v.retain(|&s| s >= new_first);
            !v.is_empty()
        });
        self.by_group.retain(|_, v| {
            v.retain(|&s| s >= new_first);
            !v.is_empty()
        });
        self.by_session.retain(|_, &mut s| s >= new_first);
        self.attributed.retain(|&s| s >= new_first);
        Ok(CompactReport {
            segments_removed: cut,
            records_removed: removed as u64,
        })
    }

    /// The key epoch a sequence number falls in (per the rollover records
    /// retained in the ledger).
    pub fn epoch_of(&self, seq: u64) -> u64 {
        let idx = self.epoch_marks.partition_point(|&(s, _)| s <= seq);
        if idx == 0 {
            0
        } else {
            self.epoch_marks[idx - 1].1
        }
    }

    /// Reads one entry back from disk, re-checking its frame guards.
    pub fn get(&self, seq: u64) -> Result<Option<Entry>> {
        if seq < self.first_seq || seq >= self.next_seq {
            return Ok(None);
        }
        let meta = &self.locs[(seq - self.first_seq) as usize];
        let seg = &self.segments[meta.seg];
        let mut f = File::open(&seg.path)?;
        f.seek(SeekFrom::Start(meta.offset))?;
        let mut buf = vec![0u8; meta.frame_len];
        f.read_exact(&mut buf)?;
        let payload = &buf[FRAME_OVERHEAD..];
        let stored = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        if crate::crc::crc32(payload) != stored {
            return Err(LedgerError::Corrupt {
                segment: seg.base_seq,
                offset: meta.offset,
                what: "frame CRC mismatch on read-back",
            });
        }
        Ok(Some(Entry::from_wire(payload)?))
    }

    /// First retained checkpoint record at or after `seq`, if any.
    /// Replication serves ranges whose last entry is a signed checkpoint;
    /// this locates the boundary without decoding records.
    pub fn next_checkpoint_at_or_after(&self, seq: u64) -> Option<u64> {
        let start = seq.max(self.first_seq);
        if start >= self.next_seq {
            return None;
        }
        self.locs[(start - self.first_seq) as usize..]
            .iter()
            .position(|m| m.kind == RecordKind::Checkpoint)
            .map(|i| start + i as u64)
    }

    /// Reads the raw (CRC-checked) entry payload bytes for the inclusive
    /// sequence range, segment-file handles reused across consecutive
    /// records. These are the exact bytes the hash chain covers, so a
    /// replica can replay the chain over them without re-encoding.
    pub fn payloads_range(&self, from: u64, to_incl: u64) -> Result<Vec<Vec<u8>>> {
        if from > to_incl {
            return Ok(Vec::new());
        }
        if from < self.first_seq {
            return Err(LedgerError::NoSuchRecord(from));
        }
        if to_incl >= self.next_seq {
            return Err(LedgerError::NoSuchRecord(to_incl));
        }
        let mut out = Vec::with_capacity((to_incl - from + 1) as usize);
        let mut open: Option<(usize, File)> = None;
        for seq in from..=to_incl {
            let meta = &self.locs[(seq - self.first_seq) as usize];
            let seg = &self.segments[meta.seg];
            if open.as_ref().map(|(i, _)| *i) != Some(meta.seg) {
                open = Some((meta.seg, File::open(&seg.path)?));
            }
            let Some((_, f)) = open.as_mut() else {
                return Err(LedgerError::NoSuchRecord(seq));
            };
            f.seek(SeekFrom::Start(meta.offset))?;
            let mut buf = vec![0u8; meta.frame_len];
            f.read_exact(&mut buf)?;
            let stored = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
            let payload = buf.split_off(FRAME_OVERHEAD);
            if crate::crc::crc32(&payload) != stored {
                return Err(LedgerError::Corrupt {
                    segment: seg.base_seq,
                    offset: meta.offset,
                    what: "frame CRC mismatch on range read",
                });
            }
            out.push(payload);
        }
        Ok(out)
    }

    /// The sequence number of the access record for a session id, if that
    /// session is in the ledger.
    pub fn find_session(&self, session_id_bytes: &[u8]) -> Option<u64> {
        self.by_session.get(session_id_bytes).copied()
    }

    /// Whether an access record has already been attributed by a sweep.
    pub fn is_attributed(&self, seq: u64) -> bool {
        self.attributed.contains(&seq)
    }

    /// Runs an indexed query, returning matching entries in sequence
    /// order. Uses the router/group indexes to avoid full scans when
    /// those criteria are present.
    pub fn query(&self, q: &LedgerQuery) -> Result<Vec<Entry>> {
        let candidates: Vec<u64> = if let Some(g) = q.group {
            self.by_group.get(&g).cloned().unwrap_or_default()
        } else if let Some(r) = &q.router {
            self.by_router.get(r).cloned().unwrap_or_default()
        } else {
            (self.first_seq..self.next_seq).collect()
        };
        let mut out = Vec::new();
        for seq in candidates {
            if seq < self.first_seq || seq >= self.next_seq {
                continue;
            }
            let meta = &self.locs[(seq - self.first_seq) as usize];
            if let Some(k) = q.kind {
                // Group/router hits point at access records by construction.
                if meta.kind != k {
                    continue;
                }
            }
            if q.since_ms.is_some_and(|t| meta.at_ms < t)
                || q.until_ms.is_some_and(|t| meta.at_ms > t)
                || q.epoch.is_some_and(|e| self.epoch_of(seq) != e)
            {
                continue;
            }
            if let Some(e) = self.get(seq)? {
                out.push(e);
            }
        }
        Ok(out)
    }

    /// Reads every retained entry in order (exports, sweeps over the full
    /// log). Streams segment-by-segment rather than seeking per record.
    pub fn iter_all(&self) -> Result<Vec<Entry>> {
        let mut out = Vec::with_capacity(self.locs.len());
        for (i, seg) in self.segments.iter().enumerate() {
            let bytes = read_file(&seg.path)?;
            let take = if i + 1 == self.segments.len() {
                self.seg_bytes as usize
            } else {
                bytes.len()
            };
            let header = SegmentHeader::parse(&bytes).ok_or(LedgerError::Corrupt {
                segment: seg.base_seq,
                offset: 0,
                what: "segment header unreadable",
            })?;
            let res = scan(
                &bytes[..take.min(bytes.len())],
                SEGMENT_HEADER_LEN,
                header.base_seq,
                header.prev_chain,
                self.cfg.max_record_bytes,
            );
            out.extend(res.entries.into_iter().map(|s| s.entry));
        }
        Ok(out)
    }
}

impl Drop for Ledger {
    /// Drop-guard: best-effort flush so buffered appends reach the disk
    /// even on an unwinding exit. (A hard kill skips this — recovery then
    /// truncates whatever tail tore.)
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

fn index_shallow(
    entry: &ShallowEntry,
    by_router: &mut HashMap<String, Vec<u64>>,
    by_group: &mut HashMap<u32, Vec<u64>>,
    by_session: &mut HashMap<Vec<u8>, u64>,
    epoch_marks: &mut Vec<(u64, u64)>,
    attributed: &mut HashSet<u64>,
    last_checkpoint: &mut Option<(u64, [u8; 32])>,
) {
    match &entry.facts {
        IndexFacts::Access { router, session_id } => {
            by_router.entry(router.clone()).or_default().push(entry.seq);
            by_session.insert(session_id.clone(), entry.seq);
        }
        IndexFacts::EpochRollover { epoch } => epoch_marks.push((entry.seq, *epoch)),
        IndexFacts::Checkpoint(ck) => *last_checkpoint = Some((ck.seq, ck.chain)),
        IndexFacts::Attribution { session_seq, group } => {
            by_group.entry(*group).or_default().push(*session_seq);
            attributed.insert(*session_seq);
        }
        IndexFacts::Revocation => {}
    }
}

/// Offline chain verification report.
#[derive(Clone, Debug)]
pub struct ChainReport {
    /// Segment files examined.
    pub segments: usize,
    /// Records whose frames and chain replayed cleanly.
    pub records: u64,
    /// Checkpoints whose ECDSA signatures verified.
    pub checkpoints_verified: usize,
    /// Sequence number after the last valid record.
    pub next_seq: u64,
    /// The replayed chain value.
    pub chain: [u8; 32],
    /// Bytes of torn tail found (and ignored) in the last segment.
    pub torn_bytes: u64,
    /// Whether the newest checkpoint covers every record before the head
    /// (i.e. the final record is a checkpoint over the rest).
    pub anchored: bool,
}

/// Walks a ledger directory read-only: replays the hash chain across all
/// segments, validates every frame, and verifies every checkpoint
/// signature via `resolve` (mapping a signer name to its verifying key).
///
/// Interior damage, broken chains, and bad checkpoints are errors; a torn
/// tail in the last segment is reported but tolerated, matching what
/// [`Ledger::open`] would repair.
pub fn verify_chain(
    dir: impl AsRef<Path>,
    resolve: impl Fn(&str) -> Option<VerifyingKey>,
) -> Result<ChainReport> {
    let dir = dir.as_ref();
    let segments = list_segments(dir)?;
    let max_record = LedgerConfig::default().max_record_bytes;
    let mut chain = genesis_chain();
    let mut next_seq = 0u64;
    let mut records = 0u64;
    let mut checkpoints_verified = 0usize;
    let mut torn_bytes = 0u64;
    let mut last_ck_seq = None;
    let count = segments.len();
    for (i, seg) in segments.iter().enumerate() {
        let bytes = read_file(&seg.path)?;
        let header = SegmentHeader::parse(&bytes).ok_or(LedgerError::Corrupt {
            segment: seg.base_seq,
            offset: 0,
            what: "segment header unreadable",
        })?;
        if i == 0 {
            chain = header.prev_chain;
            if header.base_seq == 0 && chain != genesis_chain() {
                return Err(LedgerError::ChainBroken { segment: 0 });
            }
        } else if header.base_seq != next_seq || header.prev_chain != chain {
            return Err(LedgerError::ChainBroken {
                segment: seg.base_seq,
            });
        }
        let res = scan(
            &bytes,
            SEGMENT_HEADER_LEN,
            header.base_seq,
            header.prev_chain,
            max_record,
        );
        if let Some(flaw) = res.flaw {
            if i + 1 != count {
                return Err(LedgerError::Corrupt {
                    segment: seg.base_seq,
                    offset: res.valid_len as u64,
                    what: flaw.describe(),
                });
            }
            torn_bytes = bytes.len() as u64 - res.valid_len as u64;
        }
        for se in &res.entries {
            if let LedgerRecord::Checkpoint(ck) = &se.entry.record {
                // scan() already matched (seq, chain); here we verify the
                // signature against the claimed signer's key.
                let Some(key) = resolve(&ck.signer) else {
                    return Err(LedgerError::CheckpointInvalid {
                        seq: se.entry.seq,
                        what: "unknown checkpoint signer",
                    });
                };
                if !ck.verify(&key) {
                    return Err(LedgerError::CheckpointInvalid {
                        seq: se.entry.seq,
                        what: "checkpoint signature invalid",
                    });
                }
                checkpoints_verified += 1;
                last_ck_seq = Some(se.entry.seq);
            }
        }
        records += res.entries.len() as u64;
        chain = res.chain;
        next_seq = header.base_seq + res.entries.len() as u64;
    }
    Ok(ChainReport {
        segments: count,
        records,
        checkpoints_verified,
        next_seq,
        chain,
        torn_bytes,
        anchored: last_ck_seq.is_some_and(|s| s + 1 == next_seq),
    })
}
