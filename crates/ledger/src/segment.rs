//! Segment file format: header, frames, and the recovery scanner.
//!
//! ```text
//! segment  := header frame*
//! header   := magic("PLG1") version:u16 base_seq:u64 created_at:u64
//!             prev_chain:[32] header_crc:u32
//! frame    := len:u32 payload_crc:u32 payload[len]
//! payload  := Entry wire encoding (seq, at_ms, record)
//! ```
//!
//! The running chain is `chainᵢ = SHA-256(chainᵢ₋₁ ‖ payloadᵢ)`; it is not
//! stored per frame — each segment header pins the chain value at its
//! start, and signed [`Checkpoint`](crate::Checkpoint) records pin it at
//! arbitrary points, so any mutation of any byte of any payload is caught
//! when the chain is replayed.
//!
//! The scanner implements crash recovery: it accepts frames until the
//! first one that is short, oversized, CRC-damaged, undecodable, or
//! out-of-sequence, and reports the byte length of the valid prefix. A
//! torn tail — the only damage a crash can cause, because frames are
//! written with a single `write_all` — is therefore skipped
//! deterministically, byte-for-byte identically on every open.

use peace_hash::sha256;
use peace_wire::Decode;

use crate::crc::crc32;
use crate::record::{Entry, IndexFacts, ShallowEntry};

/// Segment file magic.
pub const SEG_MAGIC: [u8; 4] = *b"PLG1";

/// Segment format version.
pub const SEG_VERSION: u16 = 1;

/// Encoded header length in bytes.
pub const SEGMENT_HEADER_LEN: usize = 4 + 2 + 8 + 8 + 32 + 4;

/// Per-frame overhead (length prefix + CRC).
pub const FRAME_OVERHEAD: usize = 8;

/// The chain value before the first record of a fresh ledger.
pub fn genesis_chain() -> [u8; 32] {
    sha256(b"PEACE-LEDGER-GENESIS-v1")
}

/// Extends the running chain with one frame payload.
pub fn extend_chain(chain: &[u8; 32], payload: &[u8]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(32 + payload.len());
    buf.extend_from_slice(chain);
    buf.extend_from_slice(payload);
    sha256(&buf)
}

/// A parsed segment header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Sequence number of the first record in this segment.
    pub base_seq: u64,
    /// Wall-clock milliseconds when the segment was created.
    pub created_at: u64,
    /// The running chain value at the start of this segment.
    pub prev_chain: [u8; 32],
}

impl SegmentHeader {
    /// Serializes the header (including its CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN);
        out.extend_from_slice(&SEG_MAGIC);
        out.extend_from_slice(&SEG_VERSION.to_be_bytes());
        out.extend_from_slice(&self.base_seq.to_be_bytes());
        out.extend_from_slice(&self.created_at.to_be_bytes());
        out.extend_from_slice(&self.prev_chain);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Parses and validates a header from the start of a segment file.
    pub fn parse(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < SEGMENT_HEADER_LEN {
            return None;
        }
        let body = &bytes[..SEGMENT_HEADER_LEN - 4];
        let crc = u32::from_be_bytes([
            bytes[SEGMENT_HEADER_LEN - 4],
            bytes[SEGMENT_HEADER_LEN - 3],
            bytes[SEGMENT_HEADER_LEN - 2],
            bytes[SEGMENT_HEADER_LEN - 1],
        ]);
        if crc32(body) != crc || body[..4] != SEG_MAGIC {
            return None;
        }
        if u16::from_be_bytes([body[4], body[5]]) != SEG_VERSION {
            return None;
        }
        let u64_at = |off: usize| {
            let mut a = [0u8; 8];
            a.copy_from_slice(&body[off..off + 8]);
            u64::from_be_bytes(a)
        };
        let base_seq = u64_at(6);
        let created_at = u64_at(14);
        let mut prev_chain = [0u8; 32];
        prev_chain.copy_from_slice(&body[22..54]);
        Some(Self {
            base_seq,
            created_at,
            prev_chain,
        })
    }
}

/// Frames one entry payload: `len ‖ crc ‖ payload`, produced as a single
/// buffer so the append path issues exactly one `write_all` — an abort
/// mid-write can only leave a *trailing* partial frame, never an interior
/// hole.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a scan stopped before the end of the segment bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanFlaw {
    /// The remaining bytes are shorter than a frame header, or the frame's
    /// claimed length runs past the end of the file (torn write).
    TornFrame,
    /// The frame's payload CRC did not match (torn write or bit rot).
    CrcMismatch,
    /// The payload passed its CRC but failed to decode as an [`Entry`].
    Undecodable,
    /// The entry decoded but its sequence number broke the dense order.
    SequenceBreak,
    /// The frame's claimed length exceeds the configured record bound.
    Oversized,
    /// A checkpoint record disagrees with the replayed chain state.
    CheckpointMismatch,
}

impl ScanFlaw {
    /// Human-readable description.
    pub fn describe(self) -> &'static str {
        match self {
            ScanFlaw::TornFrame => "torn frame (short header or truncated payload)",
            ScanFlaw::CrcMismatch => "frame CRC mismatch",
            ScanFlaw::Undecodable => "payload undecodable as a ledger entry",
            ScanFlaw::SequenceBreak => "entry sequence number out of order",
            ScanFlaw::Oversized => "frame exceeds the record size bound",
            ScanFlaw::CheckpointMismatch => "checkpoint disagrees with replayed chain",
        }
    }
}

/// One accepted entry plus its frame location within the segment.
#[derive(Clone, Debug)]
pub struct ScannedEntry {
    /// The decoded entry.
    pub entry: Entry,
    /// Byte offset of the frame (its length prefix) within the segment.
    pub offset: usize,
    /// Total frame length including the 8-byte overhead.
    pub frame_len: usize,
}

/// The outcome of scanning a segment's frame region.
#[derive(Clone, Debug)]
pub struct ScanResult {
    /// Entries accepted, in order.
    pub entries: Vec<ScannedEntry>,
    /// Byte length of the valid prefix (header included).
    pub valid_len: usize,
    /// The running chain value after the last accepted entry.
    pub chain: [u8; 32],
    /// Why the scan stopped early, if it did.
    pub flaw: Option<ScanFlaw>,
}

/// Scans the frames of one segment (bytes *after* the header), starting
/// from `base_seq` / `prev_chain`, accepting at most `max_record` payload
/// bytes per frame. Checkpoint records are structurally validated against
/// the replayed chain as they are encountered (their signatures are
/// checked separately, where keys are available).
pub fn scan(
    bytes: &[u8],
    header_len: usize,
    base_seq: u64,
    prev_chain: [u8; 32],
    max_record: u32,
) -> ScanResult {
    let mut entries = Vec::new();
    let mut chain = prev_chain;
    let mut seq = base_seq;
    let mut pos = header_len;
    let mut flaw = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_OVERHEAD {
            flaw = Some(ScanFlaw::TornFrame);
            break;
        }
        let len = u32::from_be_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len > max_record as usize {
            flaw = Some(ScanFlaw::Oversized);
            break;
        }
        if remaining < FRAME_OVERHEAD + len {
            flaw = Some(ScanFlaw::TornFrame);
            break;
        }
        let crc = u32::from_be_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let payload = &bytes[pos + FRAME_OVERHEAD..pos + FRAME_OVERHEAD + len];
        if crc32(payload) != crc {
            flaw = Some(ScanFlaw::CrcMismatch);
            break;
        }
        let Ok(entry) = Entry::from_wire(payload) else {
            flaw = Some(ScanFlaw::Undecodable);
            break;
        };
        if entry.seq != seq {
            flaw = Some(ScanFlaw::SequenceBreak);
            break;
        }
        if let crate::record::LedgerRecord::Checkpoint(ck) = &entry.record {
            // A checkpoint at seq S must attest to exactly the chain state
            // reached after the S records before it.
            if ck.seq != seq || ck.chain != chain {
                flaw = Some(ScanFlaw::CheckpointMismatch);
                break;
            }
        }
        chain = extend_chain(&chain, payload);
        entries.push(ScannedEntry {
            entry,
            offset: pos,
            frame_len: FRAME_OVERHEAD + len,
        });
        seq += 1;
        pos += FRAME_OVERHEAD + len;
    }
    ScanResult {
        entries,
        valid_len: pos,
        chain,
        flaw,
    }
}

/// How [`scan_shallow`] treats the SHA-256 record chain.
#[derive(Clone, Copy, Debug)]
pub enum ChainMode {
    /// Replay the chain from this seed (the segment header's
    /// `prev_chain`) and pin every checkpoint record against it.
    Replay([u8; 32]),
    /// Skip hashing entirely — a later ECDSA-signed checkpoint attests
    /// this segment. The result's `chain` is dead (`chain_live` false).
    Skip,
    /// Skip hashing until the frame at `offset`, which must hold the
    /// signed checkpoint attesting the skipped prefix; seed the chain
    /// with the checkpoint's attested value there and replay onward.
    Resume {
        /// Byte offset (within the segment) of the checkpoint frame.
        offset: usize,
        /// The checkpoint's attested chain value at that frame.
        chain: [u8; 32],
    },
}

/// One shallowly-decoded entry plus its frame location.
#[derive(Clone, Debug)]
pub struct ShallowScanned {
    /// Envelope + index facts (no group elements decoded).
    pub entry: ShallowEntry,
    /// Byte offset of the frame (its length prefix) within the segment.
    pub offset: usize,
    /// Total frame length including the 8-byte overhead.
    pub frame_len: usize,
}

/// The outcome of a shallow scan.
#[derive(Clone, Debug)]
pub struct ShallowScanResult {
    /// Entries accepted, in order.
    pub entries: Vec<ShallowScanned>,
    /// Byte length of the valid prefix (header included).
    pub valid_len: usize,
    /// The running chain value after the last accepted entry; only
    /// meaningful when `chain_live` is true.
    pub chain: [u8; 32],
    /// Whether `chain` was actually replayed (always for
    /// [`ChainMode::Replay`]; for [`ChainMode::Resume`] only once the
    /// resume frame was reached; never for [`ChainMode::Skip`]).
    pub chain_live: bool,
    /// Why the scan stopped early, if it did.
    pub flaw: Option<ScanFlaw>,
}

/// The recovery scanner: identical frame validation to [`scan`] (length,
/// CRC, dense sequence numbers, torn-tail detection) but decodes only the
/// entry envelope and index facts — no curve points — and can resume the
/// SHA-256 chain replay from a signed checkpoint instead of the segment
/// head (see [`ChainMode`]).
pub fn scan_shallow(
    bytes: &[u8],
    header_len: usize,
    base_seq: u64,
    mode: ChainMode,
    max_record: u32,
) -> ShallowScanResult {
    let mut entries = Vec::new();
    let (mut live, mut chain, resume_at) = match mode {
        ChainMode::Replay(c) => (true, c, None),
        ChainMode::Skip => (false, [0u8; 32], None),
        ChainMode::Resume { offset, chain } => (false, chain, Some(offset)),
    };
    let mut seq = base_seq;
    let mut pos = header_len;
    let mut flaw = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_OVERHEAD {
            flaw = Some(ScanFlaw::TornFrame);
            break;
        }
        let len = u32::from_be_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len > max_record as usize {
            flaw = Some(ScanFlaw::Oversized);
            break;
        }
        if remaining < FRAME_OVERHEAD + len {
            flaw = Some(ScanFlaw::TornFrame);
            break;
        }
        let crc = u32::from_be_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let payload = &bytes[pos + FRAME_OVERHEAD..pos + FRAME_OVERHEAD + len];
        if crc32(payload) != crc {
            flaw = Some(ScanFlaw::CrcMismatch);
            break;
        }
        let Ok(entry) = ShallowEntry::parse(payload) else {
            flaw = Some(ScanFlaw::Undecodable);
            break;
        };
        if entry.seq != seq {
            flaw = Some(ScanFlaw::SequenceBreak);
            break;
        }
        if resume_at == Some(pos) {
            // `chain` already holds the checkpoint's attested value; the
            // pinning check below verifies the frame really is that
            // checkpoint.
            live = true;
        }
        if live {
            if let IndexFacts::Checkpoint(ck) = &entry.facts {
                if ck.seq != seq || ck.chain != chain {
                    flaw = Some(ScanFlaw::CheckpointMismatch);
                    break;
                }
            }
            chain = extend_chain(&chain, payload);
        }
        entries.push(ShallowScanned {
            entry,
            offset: pos,
            frame_len: FRAME_OVERHEAD + len,
        });
        seq += 1;
        pos += FRAME_OVERHEAD + len;
    }
    ShallowScanResult {
        entries,
        valid_len: pos,
        chain,
        chain_live: live,
        flaw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LedgerRecord;
    use peace_wire::Encode;

    fn entry(seq: u64) -> Entry {
        Entry {
            seq,
            at_ms: 100 + seq,
            record: LedgerRecord::EpochRollover { epoch: seq },
        }
    }

    fn build_segment(n: u64) -> (Vec<u8>, [u8; 32]) {
        let header = SegmentHeader {
            base_seq: 0,
            created_at: 1,
            prev_chain: genesis_chain(),
        };
        let mut bytes = header.to_bytes();
        let mut chain = genesis_chain();
        for s in 0..n {
            let payload = entry(s).to_wire();
            chain = extend_chain(&chain, &payload);
            bytes.extend_from_slice(&frame(&payload));
        }
        (bytes, chain)
    }

    #[test]
    fn header_roundtrip_and_damage() {
        let h = SegmentHeader {
            base_seq: 42,
            created_at: 777,
            prev_chain: [9u8; 32],
        };
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), SEGMENT_HEADER_LEN);
        assert_eq!(SegmentHeader::parse(&bytes), Some(h));
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 1;
            assert_eq!(SegmentHeader::parse(&m), None, "byte {i} flip undetected");
        }
        assert_eq!(SegmentHeader::parse(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn clean_scan_accepts_everything() {
        let (bytes, chain) = build_segment(5);
        let res = scan(&bytes, SEGMENT_HEADER_LEN, 0, genesis_chain(), 1 << 20);
        assert_eq!(res.entries.len(), 5);
        assert_eq!(res.valid_len, bytes.len());
        assert_eq!(res.chain, chain);
        assert_eq!(res.flaw, None);
    }

    #[test]
    fn torn_tail_is_skipped_at_every_truncation_point() {
        let (bytes, _) = build_segment(3);
        let res = scan(&bytes, SEGMENT_HEADER_LEN, 0, genesis_chain(), 1 << 20);
        let frame_ends: Vec<usize> = res.entries.iter().map(|e| e.offset + e.frame_len).collect();
        for cut in SEGMENT_HEADER_LEN..bytes.len() {
            let r = scan(
                &bytes[..cut],
                SEGMENT_HEADER_LEN,
                0,
                genesis_chain(),
                1 << 20,
            );
            let expect = frame_ends.iter().filter(|&&b| b <= cut).count();
            assert_eq!(r.entries.len(), expect, "cut at {cut}");
            // A cut at the bare header or on a frame end is clean; anything
            // else is a torn frame.
            if cut == SEGMENT_HEADER_LEN || frame_ends.contains(&cut) {
                assert_eq!(r.flaw, None, "cut at {cut}");
            } else {
                assert_eq!(r.flaw, Some(ScanFlaw::TornFrame), "cut at {cut}");
            }
        }
    }

    #[test]
    fn crc_damage_stops_the_scan() {
        let (mut bytes, _) = build_segment(3);
        // Flip a payload byte of the second frame.
        let res = scan(&bytes, SEGMENT_HEADER_LEN, 0, genesis_chain(), 1 << 20);
        let second = res.entries[1].offset + FRAME_OVERHEAD;
        bytes[second] ^= 0x40;
        let r = scan(&bytes, SEGMENT_HEADER_LEN, 0, genesis_chain(), 1 << 20);
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.flaw, Some(ScanFlaw::CrcMismatch));
    }

    #[test]
    fn oversized_length_stops_the_scan() {
        let (mut bytes, _) = build_segment(2);
        let res = scan(&bytes, SEGMENT_HEADER_LEN, 0, genesis_chain(), 1 << 20);
        let first = res.entries[0].offset;
        bytes[first] = 0xFF; // claimed length now huge
        let r = scan(&bytes, SEGMENT_HEADER_LEN, 0, genesis_chain(), 1 << 20);
        assert_eq!(r.entries.len(), 0);
        assert_eq!(r.flaw, Some(ScanFlaw::Oversized));
    }
}
