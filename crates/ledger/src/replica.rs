//! Multi-writer ledger replication: the substrate of the federated NO.
//!
//! A single [`Ledger`](crate::Ledger) is one writer's hash chain. A
//! federation of NO replicas needs every replica to hold everybody's
//! records without ever merging two writers into one chain (that would
//! destroy the per-writer tamper evidence the checkpoints sign). This
//! module keeps each writer's records in its own *shard* — a full
//! [`Ledger`] in a per-writer subdirectory — and replicates shards
//! between replicas as verified ranges:
//!
//! * **shards** — `shard-<writer>/` under the replica root. Exactly one
//!   shard (the replica's own writer id) is writable; the rest are
//!   mirrors appended to only by [`ReplicatedLedger::ingest_range`].
//! * **digests** — [`WriterDigest`] summarises one shard (head sequence,
//!   chain value, last signed checkpoint). Replicas gossip digest
//!   vectors to discover who is behind.
//! * **ranges** — a pulled range always ends at a signed checkpoint of
//!   the originating writer. The puller replays the hash chain over the
//!   pushed payload bytes from its own mirror head and accepts the range
//!   only if the replayed chain equals the checkpoint's attested chain
//!   and the checkpoint's ECDSA signature verifies under the writer's
//!   key. Anything a peer serves is therefore exactly as trustworthy as
//!   if the writer had served it — mirrors can re-serve ranges, so a
//!   rejoining replica catches up even when the original writer is dead.
//! * **quarantine** — a range whose replayed chain conflicts with a
//!   signed checkpoint, or whose overlap disagrees byte-for-byte with
//!   what the mirror already holds, is evidence of writer equivocation
//!   (or a tampering peer). The shard is refused, marked quarantined,
//!   and excluded from the merged view until an operator intervenes.
//! * **merge** — the merged view is deterministic: entries ordered by
//!   `(writer_id, seq)` with duplicate access transcripts (same session
//!   id, reported to two replicas by a failing-over router) dropped in
//!   that same order. Any two replicas holding the same shard contents
//!   produce byte-identical merged views regardless of how deliveries
//!   interleaved — pinned by a proptest in `tests/replica_merge.rs`.

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};

use peace_ecdsa::VerifyingKey;
use peace_hash::sha256;
use peace_wire::{Decode, Encode, Reader, Writer};

use crate::checkpoint::Checkpoint;
use crate::record::{Entry, LedgerRecord};
use crate::segment::extend_chain;
use crate::store::{verify_chain, ChainReport, Ledger, LedgerConfig, RecoveryReport};
use crate::{LedgerError, Result};

/// Maps a writer/checkpoint-signer name to its trusted verifying key.
pub type WriterKeyResolver<'a> = &'a dyn Fn(&str) -> Option<VerifyingKey>;

/// One shard's replication summary, as gossiped between replicas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriterDigest {
    /// The writer id owning the shard's chain.
    pub writer: String,
    /// Sequence number the shard's next append would get (records held).
    pub next_seq: u64,
    /// The shard's running chain value at `next_seq`.
    pub chain: [u8; 32],
    /// Position of the last signed checkpoint record, if any. Only
    /// entries at or before this are served to pullers — the unattested
    /// tail stays private to the writer until it checkpoints.
    pub ckpt_seq: Option<u64>,
    /// Whether the holder has quarantined this shard (conflict found).
    pub quarantined: bool,
}

impl Encode for WriterDigest {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.writer);
        w.put_u64(self.next_seq);
        w.put_fixed(&self.chain);
        match self.ckpt_seq {
            Some(s) => {
                w.put_u8(1);
                w.put_u64(s);
            }
            None => w.put_u8(0),
        }
        w.put_u8(u8::from(self.quarantined));
    }
}

impl Decode for WriterDigest {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        let writer = r.get_str()?;
        let next_seq = r.get_u64()?;
        let mut chain = [0u8; 32];
        chain.copy_from_slice(r.get_fixed(32)?);
        let ckpt_seq = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u64()?),
            _ => return Err(peace_wire::WireError::Invalid("digest ckpt flag")),
        };
        let quarantined = match r.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(peace_wire::WireError::Invalid("digest quarantine flag")),
        };
        Ok(Self {
            writer,
            next_seq,
            chain,
            ckpt_seq,
            quarantined,
        })
    }
}

/// A verified-on-arrival range of one writer's shard: the raw entry
/// payload bytes for sequences `from_seq ..= ck.seq`, where the final
/// entry is the checkpoint record for `ck` itself.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeData {
    /// The shard's writer id.
    pub writer: String,
    /// Sequence number of the first payload.
    pub from_seq: u64,
    /// Canonical entry payload bytes, one per sequence number.
    pub payloads: Vec<Vec<u8>>,
    /// The writer-signed checkpoint the range ends at. Its `chain`
    /// attests every entry before `ck.seq`; its signature makes the
    /// range as trustworthy from a mirror as from the writer.
    pub ck: Checkpoint,
}

impl Encode for RangeData {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.writer);
        w.put_u64(self.from_seq);
        w.put_u32(self.payloads.len() as u32);
        for p in &self.payloads {
            w.put_bytes(p);
        }
        self.ck.encode(w);
    }
}

impl Decode for RangeData {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        let writer = r.get_str()?;
        let from_seq = r.get_u64()?;
        let n = r.get_u32()?;
        // Bound preallocation by what a frame could plausibly hold.
        let mut payloads = Vec::with_capacity((n as usize).min(4096));
        for _ in 0..n {
            payloads.push(r.get_bytes()?.to_vec());
        }
        let ck = Checkpoint::decode(r)?;
        Ok(Self {
            writer,
            from_seq,
            payloads,
            ck,
        })
    }
}

/// Ceiling on the encoded size of one served range. A writer that
/// checkpoints regularly never comes near it; hitting it means the
/// inter-checkpoint gap is too large to ship in one framed message, and
/// the fix is to checkpoint more often.
pub const MAX_RANGE_BYTES: usize = 768 * 1024;

/// One merged-view element: the entry plus the writer whose chain it
/// lives in.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedEntry {
    /// The writer id of the shard holding the entry.
    pub writer: String,
    /// The entry itself (its `seq` is per-writer, not global).
    pub entry: Entry,
}

/// What [`ReplicatedLedger::open`] found per shard.
#[derive(Debug, Default)]
pub struct ReplicaRecovery {
    /// Per-shard recovery reports, writer-sorted.
    pub shards: Vec<(String, RecoveryReport)>,
}

/// The federated accountability store of one NO replica: a writable
/// local shard plus verified mirrors of every peer writer.
pub struct ReplicatedLedger {
    dir: PathBuf,
    local_id: String,
    cfg: LedgerConfig,
    local: Ledger,
    mirrors: BTreeMap<String, Ledger>,
    quarantined: HashSet<String>,
}

/// Whether `id` is usable as a writer id (and thus a shard directory
/// component): short, non-empty, filesystem-inert characters only.
pub fn valid_writer_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

fn shard_dir(root: &Path, writer: &str) -> PathBuf {
    root.join(format!("shard-{writer}"))
}

fn require_writer_id(id: &str) -> Result<()> {
    if valid_writer_id(id) {
        Ok(())
    } else {
        Err(LedgerError::Replication {
            writer: id.to_owned(),
            what: "invalid writer id",
        })
    }
}

impl ReplicatedLedger {
    /// Opens (or creates) a replica store at `dir`, writing as
    /// `local_id`. Every existing `shard-*` subdirectory is recovered
    /// with the O(tail) checkpoint-resume machinery (`resolve` supplies
    /// the trusted checkpoint-signer keys), so a rejoining replica pays
    /// for its tail, not its history.
    pub fn open(
        dir: impl AsRef<Path>,
        local_id: &str,
        cfg: LedgerConfig,
        resolve: WriterKeyResolver<'_>,
    ) -> Result<(Self, ReplicaRecovery)> {
        require_writer_id(local_id)?;
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut recovery = ReplicaRecovery::default();
        let mut mirrors = BTreeMap::new();
        let mut local = None;
        let mut shard_ids: Vec<String> = Vec::new();
        for ent in std::fs::read_dir(&dir)? {
            let ent = ent?;
            if !ent.file_type()?.is_dir() {
                continue;
            }
            let name = ent.file_name();
            let Some(writer) = name.to_str().and_then(|n| n.strip_prefix("shard-")) else {
                continue;
            };
            if valid_writer_id(writer) {
                shard_ids.push(writer.to_owned());
            }
        }
        shard_ids.sort();
        for writer in shard_ids {
            let (ledger, report) =
                Ledger::open_resumed(shard_dir(&dir, &writer), cfg, |s| resolve(s))?;
            recovery.shards.push((writer.clone(), report));
            if writer == local_id {
                local = Some(ledger);
            } else {
                mirrors.insert(writer, ledger);
            }
        }
        let local = match local {
            Some(l) => l,
            None => {
                let (l, report) = Ledger::open(shard_dir(&dir, local_id), cfg)?;
                recovery.shards.push((local_id.to_owned(), report));
                recovery.shards.sort_by(|a, b| a.0.cmp(&b.0));
                l
            }
        };
        Ok((
            Self {
                dir,
                local_id: local_id.to_owned(),
                cfg,
                local,
                mirrors,
                quarantined: HashSet::new(),
            },
            recovery,
        ))
    }

    /// Wraps a standalone ledger as a single-writer replica store (the
    /// pre-federation layout: the ledger stays at its own directory and
    /// mirrors, if any ever arrive, nest under it).
    pub fn from_single(ledger: Ledger, local_id: &str) -> Self {
        Self {
            dir: ledger.dir().to_path_buf(),
            local_id: local_id.to_owned(),
            cfg: LedgerConfig::default(),
            local: ledger,
            mirrors: BTreeMap::new(),
            quarantined: HashSet::new(),
        }
    }

    /// Hands the writable local shard back, dropping the mirrors (each
    /// is flushed by its own drop guard).
    pub fn into_local(self) -> Ledger {
        self.local
    }

    /// The replica root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The local writer id.
    pub fn local_id(&self) -> &str {
        &self.local_id
    }

    /// The writable local shard.
    pub fn local(&self) -> &Ledger {
        &self.local
    }

    /// The writable local shard, mutably.
    pub fn local_mut(&mut self) -> &mut Ledger {
        &mut self.local
    }

    /// Every writer id held (local + mirrors), sorted.
    pub fn writers(&self) -> Vec<String> {
        let mut out: Vec<String> = self.mirrors.keys().cloned().collect();
        out.push(self.local_id.clone());
        out.sort();
        out
    }

    /// The shard for `writer`, if held.
    pub fn shard(&self, writer: &str) -> Option<&Ledger> {
        if writer == self.local_id {
            Some(&self.local)
        } else {
            self.mirrors.get(writer)
        }
    }

    /// Sequence number the next ingested entry for `writer` must carry
    /// (0 for a writer not yet mirrored).
    pub fn shard_next_seq(&self, writer: &str) -> u64 {
        self.shard(writer).map_or(0, |l| l.head().next_seq)
    }

    /// Looks a session id up across every held shard (local first),
    /// returning the owning writer and sequence number. Used for
    /// cross-replica transcript dedup: a router failing over re-reports
    /// a batch another replica may already have mirrored here.
    pub fn find_session(&self, session_id_bytes: &[u8]) -> Option<(String, u64)> {
        if let Some(seq) = self.local.find_session(session_id_bytes) {
            return Some((self.local_id.clone(), seq));
        }
        for (w, m) in &self.mirrors {
            if let Some(seq) = m.find_session(session_id_bytes) {
                return Some((w.clone(), seq));
            }
        }
        None
    }

    /// Whether `writer` is quarantined (conflict evidence held).
    pub fn is_quarantined(&self, writer: &str) -> bool {
        self.quarantined.contains(writer)
    }

    /// Writers currently quarantined, sorted.
    pub fn quarantined(&self) -> Vec<String> {
        let mut out: Vec<String> = self.quarantined.iter().cloned().collect();
        out.sort();
        out
    }

    /// Operator override: lifts a quarantine (after offline forensics).
    pub fn clear_quarantine(&mut self, writer: &str) -> bool {
        self.quarantined.remove(writer)
    }

    fn quarantine(&mut self, writer: &str, what: &'static str) -> LedgerError {
        self.quarantined.insert(writer.to_owned());
        crate::timing::quarantine_total().inc();
        crate::timing::replication_event("ledger.quarantine", what);
        LedgerError::Quarantined {
            writer: writer.to_owned(),
            what,
        }
    }

    /// Replication digests for every held shard, writer-sorted.
    pub fn digests(&self) -> Vec<WriterDigest> {
        self.writers()
            .into_iter()
            .filter_map(|w| {
                let shard = self.shard(&w)?;
                let head = shard.head();
                Some(WriterDigest {
                    next_seq: head.next_seq,
                    chain: head.chain,
                    ckpt_seq: shard.last_checkpoint_seq(),
                    quarantined: self.is_quarantined(&w),
                    writer: w,
                })
            })
            .collect()
    }

    /// Serves one replication range of `writer`'s shard starting at
    /// `from_seq`: the raw payloads up to (and including) the first
    /// signed checkpoint at or after `from_seq`. Returns `Ok(None)` when
    /// nothing attested lies at or past `from_seq` — the puller is as
    /// caught up as attestation allows.
    pub fn serve_range(&self, writer: &str, from_seq: u64) -> Result<Option<RangeData>> {
        if self.is_quarantined(writer) {
            return Err(LedgerError::Quarantined {
                writer: writer.to_owned(),
                what: "shard quarantined; range refused",
            });
        }
        let Some(shard) = self.shard(writer) else {
            return Err(LedgerError::Replication {
                writer: writer.to_owned(),
                what: "unknown writer",
            });
        };
        let head = shard.head();
        if from_seq < head.first_seq {
            return Err(LedgerError::Replication {
                writer: writer.to_owned(),
                what: "requested range compacted away",
            });
        }
        let Some(ck_seq) = shard.next_checkpoint_at_or_after(from_seq) else {
            return Ok(None);
        };
        let Some(entry) = shard.get(ck_seq)? else {
            return Err(LedgerError::NoSuchRecord(ck_seq));
        };
        let LedgerRecord::Checkpoint(ck) = entry.record else {
            return Err(LedgerError::Replication {
                writer: writer.to_owned(),
                what: "checkpoint index out of sync",
            });
        };
        let payloads = shard.payloads_range(from_seq, ck_seq)?;
        let bytes: usize = payloads.iter().map(|p| p.len() + 8).sum();
        if bytes > MAX_RANGE_BYTES {
            return Err(LedgerError::Replication {
                writer: writer.to_owned(),
                what: "inter-checkpoint gap exceeds the range size bound",
            });
        }
        Ok(Some(RangeData {
            writer: writer.to_owned(),
            from_seq,
            payloads,
            ck,
        }))
    }

    /// Ingests a pulled range into the mirror for `range.writer`,
    /// verifying before any byte becomes durable:
    ///
    /// 1. the checkpoint's signer is the writer and its ECDSA signature
    ///    verifies under the key `resolve` maps the writer to;
    /// 2. every payload decodes to a canonically encoded [`Entry`] with
    ///    the expected dense sequence number;
    /// 3. replaying the hash chain from the mirror head over the new
    ///    payloads reaches exactly the checkpoint's attested chain at
    ///    `ck.seq`;
    /// 4. any overlap with already-mirrored entries matches byte for
    ///    byte (idempotent redelivery is a no-op).
    ///
    /// A chain conflict (3) or overlap divergence (4) is equivocation
    /// evidence: the writer is quarantined and the range refused.
    /// Returns the number of records newly appended.
    pub fn ingest_range(
        &mut self,
        range: &RangeData,
        resolve: WriterKeyResolver<'_>,
    ) -> Result<u64> {
        let ingest_start = std::time::Instant::now();
        let writer = range.writer.clone();
        require_writer_id(&writer)?;
        if writer == self.local_id {
            return Err(LedgerError::Replication {
                writer,
                what: "a replica never mirrors its own writer id",
            });
        }
        if self.is_quarantined(&writer) {
            return Err(LedgerError::Quarantined {
                writer,
                what: "shard quarantined; ingest refused",
            });
        }
        if range.ck.signer != writer {
            return Err(LedgerError::Replication {
                writer,
                what: "checkpoint signer is not the shard writer",
            });
        }
        let Some(key) = resolve(&writer) else {
            return Err(LedgerError::Replication {
                writer,
                what: "no trusted key for writer",
            });
        };
        if !range.ck.verify(&key) {
            return Err(LedgerError::Replication {
                writer,
                what: "checkpoint signature invalid",
            });
        }

        // Open (or create) the mirror shard before validating against
        // its head.
        if !self.mirrors.contains_key(&writer) {
            let (ledger, _) = Ledger::open(shard_dir(&self.dir, &writer), self.cfg)?;
            self.mirrors.insert(writer.clone(), ledger);
        }
        let mirror = match self.mirrors.get_mut(&writer) {
            Some(m) => m,
            None => {
                return Err(LedgerError::Replication {
                    writer,
                    what: "mirror shard unavailable",
                })
            }
        };
        let head = mirror.head();
        if range.from_seq > head.next_seq {
            return Err(LedgerError::Replication {
                writer,
                what: "range leaves a gap before the mirror head",
            });
        }
        let end_seq = range.from_seq + range.payloads.len() as u64;
        if end_seq != range.ck.seq + 1 {
            return Err(LedgerError::Replication {
                writer,
                what: "range does not end at its checkpoint record",
            });
        }
        if range.ck.seq < head.next_seq {
            // Fully stale redelivery: cross-check the recorded
            // checkpoint at that position — a different signed
            // checkpoint for the same seq is equivocation.
            if let Some(entry) = mirror.get(range.ck.seq)? {
                match &entry.record {
                    LedgerRecord::Checkpoint(stored) if *stored == range.ck => return Ok(0),
                    _ => return Err(self.quarantine(&writer, "conflicting signed checkpoint")),
                }
            }
            return Ok(0);
        }

        // Decode + canonicality + chain replay over the genuinely new
        // suffix; byte-compare the overlap.
        let mut chain = head.chain;
        let mut staged: Vec<Entry> = Vec::new();
        for (i, payload) in range.payloads.iter().enumerate() {
            let seq = range.from_seq + i as u64;
            if seq < head.next_seq {
                let Some(stored) = mirror.get(seq)? else {
                    return Err(LedgerError::Replication {
                        writer,
                        what: "overlap reaches below the mirror's first retained record",
                    });
                };
                if stored.try_to_wire()? != *payload {
                    return Err(self.quarantine(&writer, "overlap diverges from mirrored bytes"));
                }
                continue;
            }
            let entry = Entry::from_wire(payload)?;
            if entry.seq != seq {
                return Err(LedgerError::Replication {
                    writer,
                    what: "entry sequence number out of order",
                });
            }
            if entry.try_to_wire()? != *payload {
                return Err(LedgerError::Replication {
                    writer,
                    what: "entry encoding is not canonical",
                });
            }
            if seq == range.ck.seq {
                // The chain value a checkpoint signs covers everything
                // before it — which is exactly `chain` here.
                if chain != range.ck.chain {
                    return Err(self.quarantine(&writer, "chain conflicts with signed checkpoint"));
                }
                match &entry.record {
                    LedgerRecord::Checkpoint(ck) if *ck == range.ck => {}
                    _ => {
                        return Err(LedgerError::Replication {
                            writer,
                            what: "final entry is not the attached checkpoint",
                        })
                    }
                }
            }
            chain = extend_chain(&chain, payload);
            staged.push(entry);
        }

        // All checks passed: make the range durable.
        let appended = staged.len() as u64;
        for entry in staged {
            let at_ms = entry.at_ms;
            let seq = mirror.append(entry.record, at_ms)?;
            debug_assert_eq!(seq, entry.seq);
        }
        mirror.flush()?;
        crate::timing::catchup_records().add(appended);
        crate::timing::catchup_us().record_since(ingest_start);
        Ok(appended)
    }

    /// The deterministic merged view: every non-quarantined shard's
    /// entries in `(writer_id, seq)` order, with duplicate access
    /// transcripts (same session id seen earlier in that order) dropped.
    pub fn merged(&self) -> Result<Vec<MergedEntry>> {
        let mut out = Vec::new();
        let mut seen_sessions: HashSet<Vec<u8>> = HashSet::new();
        for writer in self.writers() {
            if self.is_quarantined(&writer) {
                continue;
            }
            let Some(shard) = self.shard(&writer) else {
                continue;
            };
            for entry in shard.iter_all()? {
                if let LedgerRecord::Access(a) = &entry.record {
                    if !seen_sessions.insert(a.session.session_id.to_bytes()) {
                        continue;
                    }
                }
                out.push(MergedEntry {
                    writer: writer.clone(),
                    entry,
                });
            }
        }
        Ok(out)
    }

    /// SHA-256 over the canonical encoding of the merged view. Two
    /// replicas holding the same shard contents produce the same digest
    /// byte for byte — the convergence check of the federation.
    pub fn merged_digest(&self) -> Result<[u8; 32]> {
        let mut w = Writer::new();
        for me in self.merged()? {
            w.put_str(&me.writer);
            let bytes = me.entry.try_to_wire()?;
            w.put_bytes(&bytes);
        }
        Ok(sha256(w.as_bytes()))
    }

    /// Records-held count across all shards (mirrors included).
    pub fn total_records(&self) -> u64 {
        self.writers()
            .iter()
            .filter_map(|w| self.shard(w))
            .map(Ledger::len)
            .sum()
    }

    /// Flushes the local shard (mirrors are flushed at ingest time).
    pub fn flush(&mut self) -> Result<()> {
        self.local.flush()
    }
}

/// Per-writer chain verification of one replica directory.
#[derive(Clone, Debug)]
pub struct ReplicaVerifyReport {
    /// `(writer, chain report)` for each shard, writer-sorted.
    pub shards: Vec<(String, ChainReport)>,
}

impl ReplicaVerifyReport {
    /// Total records across all shard chains.
    pub fn records(&self) -> u64 {
        self.shards.iter().map(|(_, r)| r.records).sum()
    }

    /// Total verified checkpoint signatures across all shard chains.
    pub fn checkpoints_verified(&self) -> usize {
        self.shards
            .iter()
            .map(|(_, r)| r.checkpoints_verified)
            .sum()
    }
}

/// Walks a replica directory read-only and verifies every shard chain
/// (frames, hash chain, and all checkpoint signatures via `resolve`).
/// Fails on the first shard whose chain does not verify.
pub fn verify_replica(
    dir: impl AsRef<Path>,
    resolve: WriterKeyResolver<'_>,
) -> Result<ReplicaVerifyReport> {
    let dir = dir.as_ref();
    let mut shard_ids = Vec::new();
    for ent in std::fs::read_dir(dir)? {
        let ent = ent?;
        if !ent.file_type()?.is_dir() {
            continue;
        }
        let name = ent.file_name();
        if let Some(writer) = name.to_str().and_then(|n| n.strip_prefix("shard-")) {
            if valid_writer_id(writer) {
                shard_ids.push(writer.to_owned());
            }
        }
    }
    shard_ids.sort();
    if shard_ids.is_empty() {
        return Err(LedgerError::Replication {
            writer: String::new(),
            what: "no shard directories found",
        });
    }
    let mut shards = Vec::with_capacity(shard_ids.len());
    for writer in shard_ids {
        let report = verify_chain(shard_dir(dir, &writer), |s| resolve(s))?;
        shards.push((writer, report));
    }
    Ok(ReplicaVerifyReport { shards })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peace_ecdsa::SigningKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("peace-replica-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(seed: u64) -> SigningKey {
        SigningKey::random(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn writer_id_validation() {
        assert!(valid_writer_id("NO-0"));
        assert!(valid_writer_id("no_1.a"));
        assert!(!valid_writer_id(""));
        assert!(!valid_writer_id("a/b"));
        assert!(!valid_writer_id("a b"));
        assert!(!valid_writer_id(&"x".repeat(65)));
    }

    #[test]
    fn digest_and_range_roundtrip() {
        let d = WriterDigest {
            writer: "NO-1".into(),
            next_seq: 42,
            chain: [9u8; 32],
            ckpt_seq: Some(40),
            quarantined: false,
        };
        assert_eq!(WriterDigest::from_wire(&d.to_wire()).unwrap(), d);
        let d2 = WriterDigest {
            ckpt_seq: None,
            quarantined: true,
            ..d.clone()
        };
        assert_eq!(WriterDigest::from_wire(&d2.to_wire()).unwrap(), d2);

        let ck = Checkpoint::sign(&key(1), "NO-1", 2, [3u8; 32], 7);
        let r = RangeData {
            writer: "NO-1".into(),
            from_seq: 0,
            payloads: vec![vec![1, 2, 3], vec![]],
            ck,
        };
        assert_eq!(RangeData::from_wire(&r.to_wire()).unwrap(), r);
    }

    /// Builds a writer replica with `n` epoch-rollover records and a
    /// final signed checkpoint.
    fn writer_replica(name: &str, id: &str, k: &SigningKey, n: u64) -> ReplicatedLedger {
        let (mut rl, _) =
            ReplicatedLedger::open(tmp(name), id, LedgerConfig::default(), &|_| None).unwrap();
        for e in 0..n {
            rl.local_mut()
                .append(LedgerRecord::EpochRollover { epoch: e }, 100 + e)
                .unwrap();
        }
        rl.local_mut().checkpoint(k, id, 1_000).unwrap();
        rl
    }

    #[test]
    fn pull_ingest_converges_and_is_idempotent() {
        let k = key(7);
        let writer = writer_replica("src", "NO-0", &k, 5);
        let resolve = |s: &str| (s == "NO-0").then(|| *k.verifying_key());

        let (mut follower, _) =
            ReplicatedLedger::open(tmp("dst"), "NO-1", LedgerConfig::default(), &resolve).unwrap();
        let range = writer.serve_range("NO-0", 0).unwrap().unwrap();
        assert_eq!(follower.ingest_range(&range, &resolve).unwrap(), 6);
        assert_eq!(follower.shard_next_seq("NO-0"), 6);
        // Redelivery is a no-op.
        assert_eq!(follower.ingest_range(&range, &resolve).unwrap(), 0);
        // Nothing further attested.
        assert!(writer.serve_range("NO-0", 6).unwrap().is_none());
        // The follower can re-serve the same range from its mirror.
        let reserved = follower.serve_range("NO-0", 0).unwrap().unwrap();
        assert_eq!(reserved, range);
    }

    #[test]
    fn bad_signature_and_unknown_key_are_refused_without_quarantine() {
        let k = key(8);
        let writer = writer_replica("badsig-src", "NO-0", &k, 2);
        let range = writer.serve_range("NO-0", 0).unwrap().unwrap();

        let resolve = |s: &str| (s == "NO-0").then(|| *k.verifying_key());
        let (mut follower, _) =
            ReplicatedLedger::open(tmp("badsig-dst"), "NO-1", LedgerConfig::default(), &resolve)
                .unwrap();

        let wrong = key(9);
        let bad_key = |s: &str| (s == "NO-0").then(|| *wrong.verifying_key());
        let err = follower.ingest_range(&range, &bad_key).unwrap_err();
        assert_eq!(err.code(), "replication");
        let err = follower.ingest_range(&range, &|_| None).unwrap_err();
        assert_eq!(err.code(), "replication");
        assert!(!follower.is_quarantined("NO-0"));
        // With the right key it still goes through afterwards.
        assert_eq!(follower.ingest_range(&range, &resolve).unwrap(), 3);
    }

    #[test]
    fn chain_conflict_quarantines_the_writer() {
        let k = key(10);
        let writer = writer_replica("conflict-src", "NO-0", &k, 3);
        let mut range = writer.serve_range("NO-0", 0).unwrap().unwrap();
        // Equivocation: a validly signed checkpoint over a different
        // chain, with a tampered payload to match the length.
        range.payloads[1] = {
            let e = Entry {
                seq: 1,
                at_ms: 101,
                record: LedgerRecord::EpochRollover { epoch: 99 },
            };
            e.try_to_wire().unwrap()
        };
        let resolve = |s: &str| (s == "NO-0").then(|| *k.verifying_key());
        let (mut follower, _) = ReplicatedLedger::open(
            tmp("conflict-dst"),
            "NO-1",
            LedgerConfig::default(),
            &resolve,
        )
        .unwrap();
        let err = follower.ingest_range(&range, &resolve).unwrap_err();
        assert_eq!(err.code(), "quarantined");
        assert!(follower.is_quarantined("NO-0"));
        // Quarantine sticks: even the honest range is now refused, and
        // the merged view excludes the writer.
        let honest = writer.serve_range("NO-0", 0).unwrap().unwrap();
        assert!(follower.ingest_range(&honest, &resolve).is_err());
        assert!(follower.merged().unwrap().is_empty());
        // Operator override lifts it.
        assert!(follower.clear_quarantine("NO-0"));
        assert_eq!(follower.ingest_range(&honest, &resolve).unwrap(), 4);
    }

    #[test]
    fn merged_view_is_writer_seq_ordered() {
        let ka = key(20);
        let kb = key(21);
        let a = writer_replica("merge-a", "NO-0", &ka, 2);
        let b = writer_replica("merge-b", "NO-1", &kb, 1);
        let resolve = |s: &str| match s {
            "NO-0" => Some(*ka.verifying_key()),
            "NO-1" => Some(*kb.verifying_key()),
            _ => None,
        };
        let (mut c, _) =
            ReplicatedLedger::open(tmp("merge-c"), "NO-2", LedgerConfig::default(), &resolve)
                .unwrap();
        // Deliver b's range before a's: order must not matter.
        let rb = b.serve_range("NO-1", 0).unwrap().unwrap();
        let ra = a.serve_range("NO-0", 0).unwrap().unwrap();
        c.ingest_range(&rb, &resolve).unwrap();
        c.ingest_range(&ra, &resolve).unwrap();
        let merged = c.merged().unwrap();
        let order: Vec<(String, u64)> = merged
            .iter()
            .map(|m| (m.writer.clone(), m.entry.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                ("NO-0".into(), 0),
                ("NO-0".into(), 1),
                ("NO-0".into(), 2),
                ("NO-1".into(), 0),
                ("NO-1".into(), 1),
            ]
        );
    }

    #[test]
    fn rejoin_reopens_mirrors_durably() {
        let k = key(30);
        let writer = writer_replica("rejoin-src", "NO-0", &k, 4);
        let resolve = |s: &str| (s == "NO-0").then(|| *k.verifying_key());
        let dir = tmp("rejoin-dst");
        {
            let (mut f, _) =
                ReplicatedLedger::open(&dir, "NO-1", LedgerConfig::default(), &resolve).unwrap();
            let r = writer.serve_range("NO-0", 0).unwrap().unwrap();
            f.ingest_range(&r, &resolve).unwrap();
        }
        let (f, rec) =
            ReplicatedLedger::open(&dir, "NO-1", LedgerConfig::default(), &resolve).unwrap();
        assert_eq!(f.shard_next_seq("NO-0"), 5);
        assert!(rec.shards.iter().any(|(w, _)| w == "NO-0"));
        let report = verify_replica(&dir, &resolve).unwrap();
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.records(), 5);
        assert_eq!(report.checkpoints_verified(), 1);
    }
}
