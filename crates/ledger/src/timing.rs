//! Ledger latency instrumentation.
//!
//! Append, fsync, recovery, and audit-sweep durations are recorded into
//! the process-wide `peace-telemetry` registry under `ledger.*`, so a
//! `peace-noded --metrics-json` dump shows ledger durability costs next
//! to the crypto op counters and handshake latencies. Handles are cached
//! statics — a disabled-looking zero-cost path is not needed because a
//! record is one relaxed atomic add per bucket.

use std::sync::{Arc, OnceLock};

use peace_telemetry::{global, Histogram};

/// Registry name of the whole-append duration histogram (µs).
pub const APPEND_US: &str = "ledger.append_us";
/// Registry name of the `sync_data` duration histogram (µs).
pub const FSYNC_US: &str = "ledger.fsync_us";
/// Registry name of the open/recovery duration histogram (µs).
pub const RECOVER_US: &str = "ledger.recover_us";
/// Registry name of the batched audit-sweep duration histogram (µs).
pub const SWEEP_US: &str = "ledger.sweep_us";

fn handle(name: &'static str, cell: &'static OnceLock<Arc<Histogram>>) -> &'static Arc<Histogram> {
    cell.get_or_init(|| global().histogram(name))
}

/// Whole [`crate::Ledger::append`] duration, µs.
pub fn append_us() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    handle(APPEND_US, &H)
}

/// One `sync_data` call (append under `SyncPolicy::Always`, flush,
/// rotation), µs.
pub fn fsync_us() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    handle(FSYNC_US, &H)
}

/// One [`crate::Ledger::open`] including segment validation and torn-tail
/// truncation, µs.
pub fn recover_us() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    handle(RECOVER_US, &H)
}

/// One batched [`crate::audit_sweep`], µs.
pub fn sweep_us() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    handle(SWEEP_US, &H)
}

#[cfg(test)]
mod tests {
    use crate::record::LedgerRecord;
    use crate::store::{Ledger, LedgerConfig};

    #[test]
    fn ledger_operations_record_into_global_registry() {
        let dir = std::env::temp_dir().join(format!("peace-ledger-timing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // The registry is process-global and other tests may also append,
        // so assert growth, not absolute counts.
        let before_append = super::append_us().count();
        let before_recover = super::recover_us().count();
        {
            let (mut ledger, _) = Ledger::open(&dir, LedgerConfig::default()).unwrap();
            ledger
                .append(LedgerRecord::EpochRollover { epoch: 1 }, 1_000)
                .unwrap();
            ledger.flush().unwrap();
        }
        assert!(super::append_us().count() > before_append);
        assert!(super::recover_us().count() > before_recover);
        let snap = peace_telemetry::global().snapshot();
        assert!(snap.histograms.contains_key(super::APPEND_US));
        assert!(snap.histograms.contains_key(super::FSYNC_US));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
