//! Ledger latency instrumentation.
//!
//! Append, fsync, recovery, and audit-sweep durations are recorded into
//! the process-wide `peace-telemetry` registry under `ledger.*`, so a
//! `peace-noded --metrics-json` dump shows ledger durability costs next
//! to the crypto op counters and handshake latencies. Handles are cached
//! statics — a disabled-looking zero-cost path is not needed because a
//! record is one relaxed atomic add per bucket.

use std::sync::{Arc, OnceLock};

use peace_telemetry::{global, Counter, Histogram};

/// Registry name of the whole-append duration histogram (µs).
pub const APPEND_US: &str = "ledger.append_us";
/// Registry name of the `sync_data` duration histogram (µs).
pub const FSYNC_US: &str = "ledger.fsync_us";
/// Registry name of the open/recovery duration histogram (µs).
pub const RECOVER_US: &str = "ledger.recover_us";
/// Registry name of the batched audit-sweep duration histogram (µs).
pub const SWEEP_US: &str = "ledger.sweep_us";
/// Registry name of the resumed-open fallback counter (a `resume.pch`
/// hint was present but unusable, forcing a full chain replay).
pub const RESUME_FALLBACK: &str = "ledger.resume_fallback";
/// Registry name of the replication catch-up duration histogram (µs per
/// ingested range).
pub const CATCHUP_US: &str = "ledger.catchup_us";
/// Registry name of the replication catch-up record counter.
pub const CATCHUP_RECORDS: &str = "ledger.catchup_records";
/// Registry name of the writer-quarantine counter (chain conflict or
/// equivocation evidence during replication).
pub const QUARANTINE_TOTAL: &str = "ledger.quarantine_total";

fn handle(name: &'static str, cell: &'static OnceLock<Arc<Histogram>>) -> &'static Arc<Histogram> {
    cell.get_or_init(|| global().histogram(name))
}

fn counter(name: &'static str, cell: &'static OnceLock<Arc<Counter>>) -> &'static Arc<Counter> {
    cell.get_or_init(|| global().counter(name))
}

/// Whole [`crate::Ledger::append`] duration, µs.
pub fn append_us() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    handle(APPEND_US, &H)
}

/// One `sync_data` call (append under `SyncPolicy::Always`, flush,
/// rotation), µs.
pub fn fsync_us() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    handle(FSYNC_US, &H)
}

/// One [`crate::Ledger::open`] including segment validation and torn-tail
/// truncation, µs.
pub fn recover_us() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    handle(RECOVER_US, &H)
}

/// One batched [`crate::audit_sweep`], µs.
pub fn sweep_us() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    handle(SWEEP_US, &H)
}

/// Resumed opens that fell back to a full chain replay because the
/// `resume.pch` sidecar was damaged, stale, or unverifiable.
pub fn resume_fallback() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(RESUME_FALLBACK, &C)
}

/// One [`crate::replica::ReplicatedLedger::ingest_range`] that appended
/// new records, µs.
pub fn catchup_us() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    handle(CATCHUP_US, &H)
}

/// Records appended to mirror shards by replication catch-up.
pub fn catchup_records() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(CATCHUP_RECORDS, &C)
}

/// Writers quarantined for chain conflict / equivocation evidence.
pub fn quarantine_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(QUARANTINE_TOTAL, &C)
}

/// Emits a replication/recovery event into the process-wide event ring.
/// Wall-clock stamping is best-effort (0 on a pre-epoch clock).
pub fn replication_event(code: &str, detail: &str) {
    let at_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    global().event(code, detail, at_ms);
}

#[cfg(test)]
mod tests {
    use crate::record::LedgerRecord;
    use crate::store::{Ledger, LedgerConfig};

    #[test]
    fn ledger_operations_record_into_global_registry() {
        let dir = std::env::temp_dir().join(format!("peace-ledger-timing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // The registry is process-global and other tests may also append,
        // so assert growth, not absolute counts.
        let before_append = super::append_us().count();
        let before_recover = super::recover_us().count();
        {
            let (mut ledger, _) = Ledger::open(&dir, LedgerConfig::default()).unwrap();
            ledger
                .append(LedgerRecord::EpochRollover { epoch: 1 }, 1_000)
                .unwrap();
            ledger.flush().unwrap();
        }
        assert!(super::append_us().count() > before_append);
        assert!(super::recover_us().count() > before_recover);
        let snap = peace_telemetry::global().snapshot();
        assert!(snap.histograms.contains_key(super::APPEND_US));
        assert!(snap.histograms.contains_key(super::FSYNC_US));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
