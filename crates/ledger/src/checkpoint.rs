//! ECDSA-signed ledger checkpoints.
//!
//! A checkpoint binds a `(seq, chain)` pair — "after `seq` records the
//! running SHA-256 chain value is `chain`" — under an ECDSA signature by
//! one of the deployment's certified keys (NO's `NSK` or a provisioned
//! router key). Checkpoints are themselves appended as ledger records, so
//! they ride the same chain they attest to: an auditor who trusts `NPK`
//! can verify the whole ledger offline by replaying the chain and checking
//! every checkpoint signature along the way.

use peace_ecdsa::{Signature, SigningKey, VerifyingKey};
use peace_hash::sha256;
use peace_wire::{Decode, Encode, Reader, Writer};

/// Domain-separation prefix for checkpoint signatures.
const CKPT_DOMAIN: &[u8] = b"PEACE-LEDGER-CKPT-v1";

/// A signed ledger checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Number of records covered: the checkpoint attests to entries with
    /// sequence numbers `< seq` (it is itself appended at `seq`).
    pub seq: u64,
    /// The running chain value after hashing those `seq` records.
    pub chain: [u8; 32],
    /// Wall-clock milliseconds at signing time.
    pub at_ms: u64,
    /// Display name of the signing entity (`"NO"`, `"MR-3"`, …); the
    /// verifier maps this to a [`VerifyingKey`] out of band.
    pub signer: String,
    /// ECDSA signature over the canonical checkpoint message.
    pub sig: Signature,
}

impl Checkpoint {
    /// The exact message bytes the signature covers.
    fn message(seq: u64, chain: &[u8; 32], at_ms: u64, signer: &str) -> [u8; 32] {
        let mut w = Writer::with_capacity(CKPT_DOMAIN.len() + 8 + 32 + 8 + signer.len() + 4);
        w.put_fixed(CKPT_DOMAIN);
        w.put_u64(seq);
        w.put_fixed(chain);
        w.put_u64(at_ms);
        w.put_str(signer);
        sha256(w.as_bytes())
    }

    /// Signs a checkpoint over the given chain head.
    pub fn sign(key: &SigningKey, signer: &str, seq: u64, chain: [u8; 32], at_ms: u64) -> Self {
        let msg = Self::message(seq, &chain, at_ms, signer);
        Self {
            seq,
            chain,
            at_ms,
            signer: signer.to_owned(),
            sig: key.sign(&msg),
        }
    }

    /// Verifies the signature against the claimed signer's key.
    pub fn verify(&self, key: &VerifyingKey) -> bool {
        let msg = Self::message(self.seq, &self.chain, self.at_ms, &self.signer);
        key.verify(&msg, &self.sig)
    }
}

impl Encode for Checkpoint {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.seq);
        w.put_fixed(&self.chain);
        w.put_u64(self.at_ms);
        w.put_str(&self.signer);
        w.put_bytes(&self.sig.to_bytes());
    }
}

impl Decode for Checkpoint {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        let seq = r.get_u64()?;
        let mut chain = [0u8; 32];
        chain.copy_from_slice(r.get_fixed(32)?);
        let at_ms = r.get_u64()?;
        let signer = r.get_str()?;
        let sig = Signature::from_bytes(r.get_bytes()?)
            .ok_or(peace_wire::WireError::Invalid("checkpoint signature"))?;
        Ok(Self {
            seq,
            chain,
            at_ms,
            signer,
            sig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let key = SigningKey::random(&mut rng);
        let other = SigningKey::random(&mut rng);
        let ck = Checkpoint::sign(&key, "NO", 42, [7u8; 32], 1_000);
        assert!(ck.verify(key.verifying_key()));
        assert!(!ck.verify(other.verifying_key()));

        let wire = ck.to_wire();
        let back = Checkpoint::from_wire(&wire).unwrap();
        assert_eq!(back, ck);
        assert!(back.verify(key.verifying_key()));
    }

    #[test]
    fn any_field_change_breaks_verification() {
        let mut rng = StdRng::seed_from_u64(10);
        let key = SigningKey::random(&mut rng);
        let ck = Checkpoint::sign(&key, "NO", 42, [7u8; 32], 1_000);
        let mut a = ck.clone();
        a.seq += 1;
        assert!(!a.verify(key.verifying_key()));
        let mut b = ck.clone();
        b.chain[0] ^= 1;
        assert!(!b.verify(key.verifying_key()));
        let mut c = ck.clone();
        c.at_ms += 1;
        assert!(!c.verify(key.verifying_key()));
        let mut d = ck;
        d.signer = "MR-1".into();
        assert!(!d.verify(key.verifying_key()));
    }
}
