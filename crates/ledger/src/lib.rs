//! peace-ledger: the durable accountability layer of PEACE.
//!
//! PEACE's second pillar is *accountability*: the network operator must be
//! able to audit any past session down to the responsible user group
//! (§IV.D), hours or days after the fact, even across daemon crashes. This
//! crate provides the persistent evidence layer that makes that possible:
//!
//! * **append-only segment log** ([`store::Ledger`]) — accountability
//!   records (access transcripts, user/router revocations, epoch
//!   rollovers, audit attributions) in CRC-guarded frames, hash-chained
//!   record to record and segment to segment;
//! * **crash recovery** — on open, a torn tail (half-written frame from a
//!   crash or power loss) is detected by the CRC/length guards and
//!   truncated away deterministically; the longest valid prefix survives;
//! * **signed checkpoints** ([`checkpoint::Checkpoint`]) — periodic ECDSA
//!   signatures over `(seq, chain)` by NO or a router key, so an auditor
//!   can verify ledger integrity fully offline ([`store::verify_chain`]);
//! * **segment rotation + compaction** — old segments can be dropped once
//!   a later signed checkpoint anchors the retained suffix;
//! * **indexed queries** — by epoch, router, time range, and (after an
//!   audit sweep has appended attribution records) by user group;
//! * **batch Open/Audit** ([`sweep`]) — replays a time range through the
//!   shared-Miller `open_batch` machinery, amortizing the final
//!   exponentiation across the whole record×token matrix.
//!
//! The NO-only versus NO+GM boundary of the paper is preserved: ledger
//! records never contain user identities — an audit sweep attributes a
//! session to a *group* (and a share index); mapping the share to a user
//! still requires the group manager's receipts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use core::fmt;

pub mod checkpoint;
pub mod crc;
pub mod record;
pub mod replica;
pub mod segment;
pub mod store;
pub mod sweep;
pub mod timing;

pub use checkpoint::Checkpoint;
pub use record::{AccessRecord, Entry, IndexFacts, LedgerRecord, RecordKind, ShallowEntry};
pub use replica::{
    valid_writer_id, verify_replica, MergedEntry, RangeData, ReplicaRecovery, ReplicaVerifyReport,
    ReplicatedLedger, WriterDigest, MAX_RANGE_BYTES,
};
pub use segment::{SegmentHeader, FRAME_OVERHEAD, SEGMENT_HEADER_LEN};
pub use store::{
    verify_chain, ChainReport, CompactReport, Ledger, LedgerConfig, LedgerHead, LedgerQuery,
    RecoveryReport, SyncPolicy,
};
pub use sweep::{attribute_sweep, audit_sweep, SweepOutcome};

/// Errors surfaced by the ledger.
#[derive(Debug)]
pub enum LedgerError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A record failed to encode or decode.
    Wire(peace_wire::WireError),
    /// Structural damage before the tail of the last segment — a crash can
    /// only tear the end of the log, so mid-ledger damage means tampering
    /// or media corruption and is never silently repaired.
    Corrupt {
        /// The segment file (base sequence number) holding the damage.
        segment: u64,
        /// Byte offset of the first invalid frame within that segment.
        offset: u64,
        /// What the scanner tripped over.
        what: &'static str,
    },
    /// Segment files do not chain together (header/prev-chain mismatch).
    ChainBroken {
        /// The segment whose header disagrees with its predecessor.
        segment: u64,
    },
    /// A checkpoint record does not match the chain state at its position,
    /// or its signature failed verification.
    CheckpointInvalid {
        /// Sequence number of the offending checkpoint record.
        seq: u64,
        /// Why it was rejected.
        what: &'static str,
    },
    /// A record exceeded the configured maximum encoded size.
    RecordTooLarge {
        /// The encoded length that was rejected.
        len: usize,
    },
    /// The requested compaction point is not anchored by a later signed
    /// checkpoint, or would cut into the live segment.
    CannotCompact(&'static str),
    /// A query or sweep referenced a sequence number outside the ledger.
    NoSuchRecord(u64),
    /// A replication range was refused without implicating the writer:
    /// unknown writer, sequence gap, bad signature, non-canonical
    /// encoding, oversized range, or a missing trusted key. Retrying
    /// after state changes (a key arrives, the gap fills) can succeed.
    Replication {
        /// The shard writer the refused range belonged to.
        writer: String,
        /// Why it was refused.
        what: &'static str,
    },
    /// A replication range carried equivocation evidence — a replayed
    /// chain conflicting with a validly signed checkpoint, or overlap
    /// bytes diverging from the mirrored history. The writer's shard is
    /// quarantined and excluded from the merged view until an operator
    /// clears it.
    Quarantined {
        /// The quarantined shard writer.
        writer: String,
        /// The conflict found.
        what: &'static str,
    },
}

impl LedgerError {
    /// Stable machine-readable identifier for this failure class (metrics
    /// key / event code; must never change once released).
    pub fn code(&self) -> &'static str {
        match self {
            LedgerError::Io(_) => "io",
            LedgerError::Wire(_) => "wire",
            LedgerError::Corrupt { .. } => "corrupt",
            LedgerError::ChainBroken { .. } => "chain_broken",
            LedgerError::CheckpointInvalid { .. } => "checkpoint_invalid",
            LedgerError::RecordTooLarge { .. } => "record_too_large",
            LedgerError::CannotCompact(_) => "cannot_compact",
            LedgerError::NoSuchRecord(_) => "no_such_record",
            LedgerError::Replication { .. } => "replication",
            LedgerError::Quarantined { .. } => "quarantined",
        }
    }
}

impl peace_protocol::Transient for LedgerError {
    /// Only I/O failures are worth retrying: the filesystem can recover
    /// (disk pressure, interrupted syscall). Everything else is either
    /// structural damage (corrupt, chain broken, bad checkpoint) that a
    /// retry would faithfully re-detect, or a caller error.
    fn is_transient(&self) -> bool {
        matches!(self, LedgerError::Io(_))
    }
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Io(e) => write!(f, "ledger I/O error: {e}"),
            LedgerError::Wire(e) => write!(f, "ledger record codec error: {e}"),
            LedgerError::Corrupt {
                segment,
                offset,
                what,
            } => write!(
                f,
                "ledger corrupt: segment {segment:#x} offset {offset}: {what}"
            ),
            LedgerError::ChainBroken { segment } => {
                write!(f, "ledger chain broken at segment {segment:#x}")
            }
            LedgerError::CheckpointInvalid { seq, what } => {
                write!(f, "checkpoint at seq {seq} invalid: {what}")
            }
            LedgerError::RecordTooLarge { len } => {
                write!(f, "record of {len} encoded bytes exceeds the frame bound")
            }
            LedgerError::CannotCompact(why) => write!(f, "cannot compact: {why}"),
            LedgerError::NoSuchRecord(seq) => write!(f, "no ledger record with seq {seq}"),
            LedgerError::Replication { writer, what } => {
                write!(f, "replication refused for writer {writer:?}: {what}")
            }
            LedgerError::Quarantined { writer, what } => {
                write!(f, "writer {writer:?} quarantined: {what}")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<std::io::Error> for LedgerError {
    fn from(e: std::io::Error) -> Self {
        LedgerError::Io(e)
    }
}

impl From<peace_wire::WireError> for LedgerError {
    fn from(e: peace_wire::WireError) -> Self {
        LedgerError::Wire(e)
    }
}

/// Result alias for ledger operations.
pub type Result<T> = core::result::Result<T, LedgerError>;
