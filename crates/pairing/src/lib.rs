//! The bilinear map `ê : 𝔾₁ × 𝔾₂ → 𝔾_T` for PEACE.
//!
//! This is the reduced Tate pairing on the supersingular curve
//! `E: y² = x³ + x` (embedding degree 2) composed with the distortion map
//! `φ(x,y) = (−x, i·y)` — a Type-1 pairing where the paper's isomorphism
//! `ψ : 𝔾₂ → 𝔾₁` is the identity. It satisfies the three properties of
//! §II.A: bilinearity, non-degeneracy, computability.
//!
//! # Examples
//!
//! ```
//! use peace_curve::{G1, G2};
//! use peace_field::Fq;
//! use peace_pairing::pairing;
//!
//! let a = Fq::from_u64(6);
//! let b = Fq::from_u64(7);
//! let lhs = pairing(&G1::generator().mul(&a), &G2::generator().mul(&b));
//! let rhs = pairing(&G1::generator(), &G2::generator()).pow(&a.mul(&b));
//! assert_eq!(lhs, rhs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gt;
mod miller;
pub mod ops;

pub use gt::{Gt, GtPowTable};
pub use miller::MillerValue;
pub use ops::{OpScope, OpSnapshot};

use peace_curve::{G1, G2};

/// The bilinear pairing `ê(P, Q)`.
pub fn pairing(p: &G1, q: &G2) -> Gt {
    miller::tate_pairing(p.point(), q.point())
}

/// Runs the Miller loop for `(P, Q)` without the final exponentiation.
///
/// Miller values multiply in `F_p²` and are reduced to `𝔾_T` by
/// [`MillerValue::finalize`] (or in bulk by [`MillerValue::finalize_batch`]).
/// This is the building block of the shared-Miller revocation sweep:
/// `miller(a, c).mul(&miller(b, d)).finalize() == ê(a,c)·ê(b,d)`.
pub fn miller(p: &G1, q: &G2) -> MillerValue {
    miller::miller(p.point(), q.point())
}

/// Product of pairings `∏ ê(Pᵢ, Qᵢ)` with a single shared final
/// exponentiation (cheaper than multiplying individual pairings).
pub fn pairing_product(pairs: &[(G1, G2)]) -> Gt {
    let raw: Vec<_> = pairs
        .iter()
        .map(|(p, q)| (*p.point(), *q.point()))
        .collect();
    miller::tate_pairing_product(&raw)
}

/// Pairing ratio `ê(P₁, Q₁) · ê(P₂, Q₂)⁻¹` with a single shared final
/// exponentiation.
///
/// The second Miller value is conjugated *before* reduction
/// ([`MillerValue::conjugate`]), so the quotient reduces as one product —
/// one field inversion and one hard-part pass instead of two of each plus a
/// `𝔾_T` inversion. Counts as two logical bilinear-map evaluations (the
/// paper's unit).
pub fn pairing_ratio(p1: &G1, q1: &G2, p2: &G1, q2: &G2) -> Gt {
    ops::record_pairing();
    ops::record_pairing();
    miller(p1, q1).mul(&miller(p2, q2).conjugate()).finalize()
}

/// Evaluates two pairings whose reductions share one batched final
/// exponentiation (one field inversion via Montgomery's trick, one
/// hard-part pass in lock-step). Counts as two logical bilinear-map
/// evaluations.
pub fn pairing_pair(p1: &G1, q1: &G2, p2: &G1, q2: &G2) -> (Gt, Gt) {
    ops::record_pairing();
    ops::record_pairing();
    let reduced = MillerValue::finalize_batch(&[miller(p1, q1), miller(p2, q2)]);
    (reduced[0], reduced[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use peace_field::Fq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn g1() -> G1 {
        G1::generator()
    }
    fn g2() -> G2 {
        G2::generator()
    }

    #[test]
    fn non_degenerate() {
        let e = pairing(&g1(), &g2());
        assert!(!e.is_one(), "ê(g1, g2) must not be 1");
    }

    #[test]
    fn output_has_order_q() {
        let e = pairing(&g1(), &g2());
        assert!(e.pow_uint(&peace_field::subgroup_order()).is_one());
        // and not smaller order dividing q (q prime, so any non-one element
        // has exact order q)
        assert!(!e.is_one());
    }

    #[test]
    fn bilinear_in_first_argument() {
        let mut r = rng();
        let a = Fq::random(&mut r);
        let lhs = pairing(&g1().mul(&a), &g2());
        let rhs = pairing(&g1(), &g2()).pow(&a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_in_second_argument() {
        let mut r = rng();
        let b = Fq::random(&mut r);
        let lhs = pairing(&g1(), &g2().mul(&b));
        let rhs = pairing(&g1(), &g2()).pow(&b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_both_arguments() {
        let mut r = rng();
        let a = Fq::random(&mut r);
        let b = Fq::random(&mut r);
        let lhs = pairing(&g1().mul(&a), &g2().mul(&b));
        let rhs = pairing(&g1().mul(&b), &g2().mul(&a));
        assert_eq!(lhs, rhs);
        assert_eq!(lhs, pairing(&g1(), &g2()).pow(&a.mul(&b)));
    }

    #[test]
    fn additive_in_first_argument() {
        let mut r = rng();
        let p1 = G1::random(&mut r);
        let p2 = G1::random(&mut r);
        let q = G2::random(&mut r);
        let lhs = pairing(&p1.add(&p2), &q);
        let rhs = pairing(&p1, &q).mul(&pairing(&p2, &q));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn identity_pairs_to_one() {
        let mut r = rng();
        let p = G1::random(&mut r);
        assert!(pairing(&G1::IDENTITY, &g2()).is_one());
        assert!(pairing(&p, &G2::IDENTITY).is_one());
    }

    #[test]
    fn negation_inverts() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let q = G2::random(&mut r);
        let e = pairing(&p, &q);
        assert_eq!(pairing(&p.neg(), &q), e.invert());
        assert!(pairing(&p, &q).mul(&pairing(&p.neg(), &q)).is_one());
    }

    #[test]
    fn symmetric_on_type1() {
        // ê(aG, bG) = ê(bG, aG) — needed by the paper's revocation check
        // (Eq.3): ê(v, û) = ê(u, v̂) when u = ψ(û), v = ψ(v̂).
        let mut r = rng();
        let a = Fq::random(&mut r);
        let b = Fq::random(&mut r);
        let lhs = pairing(&g1().mul(&a), &g2().mul(&b));
        let rhs = pairing(&g1().mul(&b), &g2().mul(&a));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_product_matches_individual() {
        let mut r = rng();
        let pairs: Vec<(G1, G2)> = (0..3)
            .map(|_| (G1::random(&mut r), G2::random(&mut r)))
            .collect();
        let prod = pairing_product(&pairs);
        let mut expect = Gt::ONE;
        for (p, q) in &pairs {
            expect = expect.mul(&pairing(p, q));
        }
        assert_eq!(prod, expect);
    }

    #[test]
    fn pairing_product_empty_and_identity() {
        assert!(pairing_product(&[]).is_one());
        let mut r = rng();
        let p = G1::random(&mut r);
        assert!(pairing_product(&[(p, G2::IDENTITY)]).is_one());
    }

    #[test]
    fn gt_div_and_pow() {
        let mut r = rng();
        let e = pairing(&G1::random(&mut r), &g2());
        assert!(e.div(&e).is_one());
        let a = Fq::from_u64(3);
        assert_eq!(e.pow(&a), e.mul(&e).mul(&e));
    }

    #[test]
    fn gt_bytes_roundtrip() {
        let mut r = rng();
        let e = pairing(&G1::random(&mut r), &g2());
        let bytes = e.to_bytes();
        assert_eq!(bytes.len(), 128);
        assert_eq!(Gt::from_bytes(&bytes).unwrap(), e);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

        #[test]
        fn prop_bilinearity_small_scalars(a in 1u64..1000, b in 1u64..1000) {
            let fa = Fq::from_u64(a);
            let fb = Fq::from_u64(b);
            let lhs = pairing(&g1().mul(&fa), &g2().mul(&fb));
            let rhs = pairing(&g1(), &g2()).pow(&fa.mul(&fb));
            proptest::prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_pairing_product_two(a in 1u64..500, b in 1u64..500) {
            let p1 = g1().mul(&Fq::from_u64(a));
            let p2 = g1().mul(&Fq::from_u64(b));
            let q = g2();
            // ê(P1,Q)·ê(P2,Q) = ê(P1+P2, Q)
            let prod = pairing_product(&[(p1, q), (p2, q)]);
            proptest::prop_assert_eq!(prod, pairing(&p1.add(&p2), &q));
        }
    }

    #[test]
    fn op_counters_track_pairings() {
        // OpScope serializes against the other counting test in this binary
        // (the counters are process-global).
        let scope = OpSnapshot::scope();
        let _ = pairing(&g1(), &g2());
        let _ = pairing(&g1(), &g2());
        let cost = scope.counts();
        assert_eq!(cost.pairings, 2);
        assert_eq!(cost.miller_loops, 2);
        assert_eq!(cost.final_exps, 2);
    }

    #[test]
    fn miller_value_finalize_matches_pairing() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let q = G2::random(&mut r);
        assert_eq!(miller(&p, &q).finalize(), pairing(&p, &q));
        assert!(miller(&G1::IDENTITY, &q).finalize().is_one());
        assert!(MillerValue::ONE.finalize().is_one());
    }

    #[test]
    fn miller_value_product_matches_pairing_product() {
        let mut r = rng();
        let (p1, q1) = (G1::random(&mut r), G2::random(&mut r));
        let (p2, q2) = (G1::random(&mut r), G2::random(&mut r));
        let composed = miller(&p1, &q1).mul(&miller(&p2, &q2)).finalize();
        assert_eq!(composed, pairing(&p1, &q1).mul(&pairing(&p2, &q2)));
    }

    #[test]
    fn finalize_batch_matches_individual() {
        let mut r = rng();
        let values: Vec<MillerValue> = (0..4)
            .map(|_| miller(&G1::random(&mut r), &G2::random(&mut r)))
            .collect();
        let batch = MillerValue::finalize_batch(&values);
        assert_eq!(batch.len(), values.len());
        for (v, g) in values.iter().zip(&batch) {
            assert_eq!(v.finalize(), *g);
        }
        // Including the neutral value (exercises the batch-inversion path
        // with f = 1).
        let with_one = [values[0], MillerValue::ONE, values[1]];
        let batch = MillerValue::finalize_batch(&with_one);
        assert!(batch[1].is_one());
        assert_eq!(batch[0], values[0].finalize());
        assert!(MillerValue::finalize_batch(&[]).is_empty());
    }

    #[test]
    fn conjugate_finalizes_to_inverse() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let q = G2::random(&mut r);
        let m = miller(&p, &q);
        assert_eq!(m.conjugate().finalize(), pairing(&p, &q).invert());
        assert!(m.mul(&m.conjugate()).finalize().is_one());
        assert!(MillerValue::ONE.conjugate().finalize().is_one());
    }

    #[test]
    fn pairing_ratio_matches_quotient() {
        let mut r = rng();
        let (p1, q1) = (G1::random(&mut r), G2::random(&mut r));
        let (p2, q2) = (G1::random(&mut r), G2::random(&mut r));
        let expect = pairing(&p1, &q1).div(&pairing(&p2, &q2));
        let scope = OpSnapshot::scope();
        let got = pairing_ratio(&p1, &q1, &p2, &q2);
        let cost = scope.counts();
        assert_eq!(got, expect);
        assert_eq!(cost.pairings, 2, "two logical bilinear maps");
        assert_eq!(cost.miller_loops, 2);
        assert_eq!(cost.final_exps, 1, "shared reduction");
        // Identity slots collapse to the plain inverse / plain value.
        assert_eq!(
            pairing_ratio(&G1::IDENTITY, &q1, &p2, &q2),
            pairing(&p2, &q2).invert()
        );
        assert_eq!(
            pairing_ratio(&p1, &q1, &p2, &G2::IDENTITY),
            pairing(&p1, &q1)
        );
    }

    #[test]
    fn pairing_pair_matches_individual() {
        let mut r = rng();
        let (p1, q1) = (G1::random(&mut r), G2::random(&mut r));
        let (p2, q2) = (G1::random(&mut r), G2::random(&mut r));
        let (a, b) = pairing_pair(&p1, &q1, &p2, &q2);
        assert_eq!(a, pairing(&p1, &q1));
        assert_eq!(b, pairing(&p2, &q2));
    }

    #[test]
    fn finalize_batch_counts_one_final_exp() {
        let mut r = rng();
        let values: Vec<MillerValue> = (0..5)
            .map(|_| miller(&G1::random(&mut r), &G2::random(&mut r)))
            .collect();
        let scope = OpSnapshot::scope();
        let _ = MillerValue::finalize_batch(&values);
        let cost = scope.counts();
        assert_eq!(cost.final_exps, 1);
        assert_eq!(cost.miller_loops, 0);
        assert_eq!(cost.pairings, 0);
    }

    #[test]
    fn gt_pow_table_matches_pow() {
        let mut r = rng();
        let e = pairing(&G1::random(&mut r), &g2());
        let table = GtPowTable::new(&e, 160);
        assert_eq!(table.max_bits(), 160);
        for _ in 0..4 {
            let k = Fq::random(&mut r);
            assert_eq!(table.pow(&k), e.pow(&k));
        }
        for k in [0u64, 1, 15, 16, 257] {
            let k = Fq::from_u64(k);
            assert_eq!(table.pow(&k), e.pow(&k), "k = {k:?}");
        }
        let top = Fq::ZERO.sub(&Fq::ONE);
        assert_eq!(table.pow(&top), e.pow(&top));
    }

    #[test]
    fn gt_pow_handles_non_unitary_elements() {
        // from_bytes can yield arbitrary Fp2 elements; pow must stay correct
        // on them via the binary-ladder fallback.
        let mut bytes = vec![0u8; 128];
        bytes[63] = 7; // c0 = 7, c1 = 0 — norm 49 ≠ 1
        let e = Gt::from_bytes(&bytes).unwrap();
        let cubed = e.pow(&Fq::from_u64(3));
        assert_eq!(cubed, e.mul(&e).mul(&e));
        assert!(e.invert().mul(&e).is_one());
    }
}
