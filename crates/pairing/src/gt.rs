//! The pairing target group `𝔾_T` — the order-`q` subgroup of `F_p²*`.

use core::fmt;

use peace_bigint::Uint;
use peace_field::{Fp2, Fq};

use crate::ops;

/// An element of `𝔾_T`, the order-`q` multiplicative subgroup of `F_p²`.
///
/// Elements produced by the reduced Tate pairing are *unitary*
/// (norm 1), so inversion is conjugation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gt(pub(crate) Fp2);

impl Gt {
    /// The identity element.
    pub const ONE: Self = Self(Fp2::ONE);

    /// Wraps a raw `F_p²` element (internal; used by the pairing).
    pub(crate) fn from_fp2(v: Fp2) -> Self {
        Self(v)
    }

    /// The underlying `F_p²` element.
    pub fn as_fp2(&self) -> &Fp2 {
        &self.0
    }

    /// Whether this is the identity.
    pub fn is_one(&self) -> bool {
        self.0 == Fp2::ONE
    }

    /// Group operation (multiplication in `F_p²`).
    pub fn mul(&self, rhs: &Self) -> Self {
        Self(self.0.mul(&rhs.0))
    }

    /// Division `self · rhs⁻¹` — the paper's `e(T₂, w)/e(g₁, g₂)`.
    pub fn div(&self, rhs: &Self) -> Self {
        self.mul(&rhs.invert())
    }

    /// Squaring.
    pub fn square(&self) -> Self {
        Self(self.0.square())
    }

    /// Inversion. For unitary elements this is conjugation (cheap).
    pub fn invert(&self) -> Self {
        // Pairing outputs satisfy z^(p+1) related norms; conjugate is the
        // inverse exactly when the norm is 1, which holds for all elements
        // of the order-q subgroup (q | p+1 divides the norm-1 subgroup
        // order). Fall back to a field inversion defensively.
        let conj = self.0.conjugate();
        if self.0.mul(&conj) == Fp2::ONE {
            Self(conj)
        } else {
            Self(self.0.invert().expect("Gt element is nonzero"))
        }
    }

    /// Exponentiation by a scalar — the paper's `e(·,·)^s`.
    ///
    /// Increments the 𝔾_T-exponentiation counter used by experiment E2.
    pub fn pow(&self, k: &Fq) -> Self {
        ops::record_gt_exp();
        Self(self.0.pow(&k.to_uint()))
    }

    /// Exponentiation by an arbitrary-width integer (no counter; internal).
    pub fn pow_uint<const M: usize>(&self, k: &Uint<M>) -> Self {
        Self(self.0.pow(k))
    }

    /// Canonical 128-byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Parses the canonical encoding. Does not check subgroup membership
    /// (callers compare against pairing outputs, never trust raw Gt input).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Fp2::from_bytes(bytes).map(Self)
    }
}

impl Default for Gt {
    fn default() -> Self {
        Self::ONE
    }
}

impl fmt::Debug for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gt({:?})", self.0)
    }
}
