//! The pairing target group `𝔾_T` — the order-`q` subgroup of `F_p²*`.

use core::fmt;

use peace_bigint::Uint;
use peace_field::{Fp2, Fq};

use crate::ops;

/// An element of `𝔾_T`, the order-`q` multiplicative subgroup of `F_p²`.
///
/// Elements produced by the reduced Tate pairing are *unitary*
/// (norm 1), so inversion is conjugation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gt(pub(crate) Fp2);

impl Gt {
    /// The identity element.
    pub const ONE: Self = Self(Fp2::ONE);

    /// Wraps a raw `F_p²` element (internal; used by the pairing).
    pub(crate) fn from_fp2(v: Fp2) -> Self {
        Self(v)
    }

    /// The underlying `F_p²` element.
    pub fn as_fp2(&self) -> &Fp2 {
        &self.0
    }

    /// Whether this is the identity.
    pub fn is_one(&self) -> bool {
        self.0 == Fp2::ONE
    }

    /// Group operation (multiplication in `F_p²`).
    pub fn mul(&self, rhs: &Self) -> Self {
        Self(self.0.mul(&rhs.0))
    }

    /// Division `self · rhs⁻¹` — the paper's `e(T₂, w)/e(g₁, g₂)`.
    pub fn div(&self, rhs: &Self) -> Self {
        self.mul(&rhs.invert())
    }

    /// Squaring.
    pub fn square(&self) -> Self {
        Self(self.0.square())
    }

    /// Inversion. For unitary elements this is conjugation (cheap).
    pub fn invert(&self) -> Self {
        // Conjugation inverts exactly when the norm is 1, which holds for
        // all elements of the order-q subgroup (q | p+1 divides the norm-1
        // subgroup order). Fall back to a field inversion defensively for
        // raw decoded elements.
        if self.0.is_unitary() {
            Self(self.0.conjugate())
        } else {
            Self(self.0.invert().expect("Gt element is nonzero"))
        }
    }

    /// Exponentiation by a scalar — the paper's `e(·,·)^s`.
    ///
    /// Pairing outputs are unitary, so this normally runs as a width-5 wNAF
    /// ladder with conjugation standing in for inversion (~27 muls for 160
    /// bits instead of ~80); non-unitary elements (raw `from_bytes` input)
    /// fall back to the binary ladder.
    ///
    /// Increments the 𝔾_T-exponentiation counter used by experiment E2.
    pub fn pow(&self, k: &Fq) -> Self {
        ops::record_gt_exp();
        Self(self.0.pow_unitary(&k.to_uint()))
    }

    /// Exponentiation by an arbitrary-width integer (no counter; internal).
    pub fn pow_uint<const M: usize>(&self, k: &Uint<M>) -> Self {
        Self(self.0.pow_unitary(k))
    }

    /// Canonical 128-byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Parses the canonical encoding. Does not check subgroup membership
    /// (callers compare against pairing outputs, never trust raw Gt input).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Fp2::from_bytes(bytes).map(Self)
    }
}

impl Default for Gt {
    fn default() -> Self {
        Self::ONE
    }
}

/// Fixed-base exponentiation table for a `𝔾_T` element (radix-16 comb).
///
/// `windows[j][d-1] = base^(d·16^j)`, so `base^k = Πⱼ windows[j][kⱼ − 1]`
/// where `kⱼ` is the j-th radix-16 digit of `k` — at most `⌈bits/4⌉`
/// multiplications and **zero squarings**. The verifier's fixed bases
/// `ê(g₁, g₂)` and `ê(h, w)` are exponentiated once per signature, so a
/// prepared key amortizes this table across its lifetime.
#[derive(Clone, Debug)]
pub struct GtPowTable {
    windows: Vec<[Fp2; 15]>,
}

impl GtPowTable {
    /// Builds the table for exponents up to `max_bits` bits.
    pub fn new(base: &Gt, max_bits: u32) -> Self {
        let n_windows = max_bits.div_ceil(4).max(1) as usize;
        let mut windows = Vec::with_capacity(n_windows);
        // cur = base^(16^j) at the top of each iteration.
        let mut cur = base.0;
        for _ in 0..n_windows {
            let mut row = [cur; 15];
            for d in 1..15 {
                row[d] = row[d - 1].mul(&cur);
            }
            cur = row[14].mul(&cur);
            windows.push(row);
        }
        Self { windows }
    }

    /// Exponent capacity in bits.
    pub fn max_bits(&self) -> u32 {
        self.windows.len() as u32 * 4
    }

    /// `base^k` by table lookup — multiplications only.
    ///
    /// Counts as one 𝔾_T exponentiation (it replaces one).
    pub fn pow(&self, k: &Fq) -> Gt {
        ops::record_gt_exp();
        let exp = k.to_uint();
        assert!(
            exp.bits() <= self.max_bits(),
            "exponent exceeds Gt table capacity"
        );
        let limbs = exp.as_limbs();
        let mut acc = Fp2::ONE;
        for (j, row) in self.windows.iter().enumerate() {
            let bit = j as u32 * 4;
            let digit = (limbs[(bit / 64) as usize] >> (bit % 64)) & 0xF;
            if digit != 0 {
                acc = acc.mul(&row[digit as usize - 1]);
            }
        }
        Gt::from_fp2(acc)
    }
}

impl fmt::Debug for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gt({:?})", self.0)
    }
}
