//! The reduced Tate pairing `ê : 𝔾₁ × 𝔾₂ → 𝔾_T` via the BKLS algorithm.
//!
//! For the supersingular curve `E: y² = x³ + x` over `p ≡ 3 (mod 4)` the
//! distortion map is `φ(x, y) = (−x, i·y)` with `i² = −1` in `F_p²`. The
//! modified pairing is
//!
//! ```text
//! ê(P, Q) = f_{q,P}(φ(Q))^((p²−1)/q)
//! ```
//!
//! Because the embedding degree is even, *denominator elimination* applies:
//! all vertical-line factors lie in `F_p` and are killed by the final
//! exponentiation (`(p²−1)/q = (p−1)·(p+1)/q` and `a^(p−1) = 1` for
//! `a ∈ F_p*`), so the Miller loop multiplies only slope-line values. Line
//! values at `φ(Q)` have the sparse shape `l = l_r + l_i·i` with `l_i`
//! proportional to `y_Q`, which keeps each step cheap.
//!
//! The loop runs over the 160-bit subgroup order `q` with Jacobian
//! coordinates (inversion-free).
//!
//! Beyond the one-shot [`tate_pairing`], the [`MillerValue`] API exposes the
//! two pairing phases separately so callers can share work across many
//! evaluations: products of Miller values multiply in `F_p²`, and
//! [`MillerValue::finalize_batch`] reduces a whole batch with one field
//! inversion (Montgomery's trick for the easy parts) and a single shared
//! hard-part sweep over the cached cofactor wNAF schedule. The revocation
//! check over `n` tokens drops from `2n` full pairings to `n + 1` Miller
//! loops and one final exponentiation this way.

use std::sync::OnceLock;

use peace_field::{cofactor, subgroup_order, Fp, Fp2};

use crate::gt::Gt;
use crate::ops;

/// Raw affine input to the Miller loop.
#[derive(Clone, Copy)]
struct Affine {
    x: Fp,
    y: Fp,
}

/// Jacobian accumulator inside the Miller loop.
struct Jac {
    x: Fp,
    y: Fp,
    z: Fp,
}

/// Cached Miller-loop schedule: the NAF (width-2 wNAF) recoding of the
/// 160-bit subgroup order `q`, computed once.
///
/// NAF digit density is 1/3 versus 1/2 for plain binary, so the loop runs
/// ~`bits/3` add steps instead of `popcount(q)`. Negative digits cost the
/// same as positive ones: the chord line through `T` and `−P` is what
/// [`add_step`] computes when handed the (free) affine negation of `P`, and
/// the extra vertical factors introduced by the subtraction lie in `F_p`,
/// where the final exponentiation kills them — the same denominator
/// elimination that discards vertical lines in the doubling steps.
fn loop_naf() -> &'static [i8] {
    static SCHEDULE: OnceLock<Vec<i8>> = OnceLock::new();
    SCHEDULE.get_or_init(|| {
        let digits = subgroup_order().wnaf(2);
        debug_assert_eq!(digits.last(), Some(&1), "top NAF digit of q is 1");
        digits
    })
}

/// Cached width-5 wNAF of the hard-part cofactor `c = (p+1)/q` (352 bits),
/// shared by every final exponentiation.
fn cofactor_naf() -> &'static [i8] {
    static NAF: OnceLock<Vec<i8>> = OnceLock::new();
    NAF.get_or_init(|| cofactor().wnaf(5))
}

/// An unreduced pairing value `f_{q,P}(φ(Q)) ∈ F_p²` — the output of a
/// Miller loop *before* the final exponentiation.
///
/// Miller values compose multiplicatively: `miller(P₁,Q₁).mul(&miller(P₂,Q₂))
/// .finalize() == ê(P₁,Q₁)·ê(P₂,Q₂)`. This is what lets the revocation sweep
/// compute the shared factor `f_{q,−T₁}(φ(v̂))` once and reuse it across
/// every token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MillerValue(pub(crate) Fp2);

impl MillerValue {
    /// The neutral value (finalizes to `Gt::ONE`).
    pub const ONE: Self = Self(Fp2::ONE);

    /// Multiplies two Miller values (one `F_p²` multiplication).
    pub fn mul(&self, rhs: &Self) -> Self {
        Self(self.0.mul(&rhs.0))
    }

    /// Conjugates the unreduced value, so that
    /// `m.conjugate().finalize() == m.finalize().invert()`.
    ///
    /// Frobenius commutes with the final power — `(f^p)^e = (f^e)^p` — and
    /// the reduced value is unitary, where Frobenius (conjugation) *is*
    /// inversion. This turns a pairing **quotient** into a pairing product
    /// of Miller values before reduction: `ê(P₁,Q₁)·ê(P₂,Q₂)⁻¹` costs one
    /// final exponentiation instead of two plus a `𝔾_T` inversion.
    pub fn conjugate(&self) -> Self {
        Self(self.0.conjugate())
    }

    /// Applies the final exponentiation, producing a `𝔾_T` element.
    pub fn finalize(&self) -> Gt {
        final_exponentiation(&self.0)
    }

    /// Finalizes a batch of Miller values, sharing the expensive pieces:
    ///
    /// * the easy parts `yᵢ = conj(fᵢ)·fᵢ⁻¹` use Montgomery's trick, so the
    ///   whole batch costs **one** field inversion;
    /// * the hard parts run in lock-step over the single cached cofactor
    ///   wNAF schedule (all accumulators advance digit by digit).
    ///
    /// The batch is recorded as **one** final exponentiation in the op
    /// counters, matching the paper-shape accounting of the revocation
    /// sweep (`n + 1` Miller loops, 1 final exponentiation).
    pub fn finalize_batch(values: &[Self]) -> Vec<Gt> {
        if values.is_empty() {
            return Vec::new();
        }
        ops::record_final_exp();
        let n = values.len();
        // Montgomery batch inversion: prefix[i] = f₀·…·fᵢ₋₁.
        let mut prefix = Vec::with_capacity(n);
        let mut acc = Fp2::ONE;
        for v in values {
            prefix.push(acc);
            acc = acc.mul(&v.0);
        }
        let mut suffix_inv = acc.invert().expect("Miller values are nonzero");
        let mut easy = vec![Fp2::ONE; n];
        for i in (0..n).rev() {
            let f_inv = suffix_inv.mul(&prefix[i]);
            easy[i] = values[i].0.conjugate().mul(&f_inv);
            suffix_inv = suffix_inv.mul(&values[i].0);
        }
        // Shared hard part: every yᵢ is unitary after the easy part, so one
        // pass over the cofactor wNAF drives all accumulators together,
        // with conjugation standing in for inversion on negative digits.
        let mut tables = Vec::with_capacity(n);
        for y in &easy {
            let y2 = y.square();
            let mut table = [*y; 8];
            for i in 1..8 {
                table[i] = table[i - 1].mul(&y2);
            }
            tables.push(table);
        }
        let mut accs = vec![Fp2::ONE; n];
        for &d in cofactor_naf().iter().rev() {
            for a in accs.iter_mut() {
                *a = a.square();
            }
            if d > 0 {
                for (a, t) in accs.iter_mut().zip(&tables) {
                    *a = a.mul(&t[(d >> 1) as usize]);
                }
            } else if d < 0 {
                for (a, t) in accs.iter_mut().zip(&tables) {
                    *a = a.mul(&t[((-d) >> 1) as usize].conjugate());
                }
            }
        }
        accs.into_iter().map(Gt::from_fp2).collect()
    }
}

/// Runs one Miller loop `f_{q,P}(φ(Q))` without reducing it.
///
/// Identity in either slot yields [`MillerValue::ONE`] without running (and
/// without counting) a loop.
pub fn miller(p: &peace_curve::AffinePoint, q: &peace_curve::AffinePoint) -> MillerValue {
    if p.is_identity() || q.is_identity() {
        return MillerValue::ONE;
    }
    MillerValue(miller_loop(
        &Affine { x: p.x, y: p.y },
        &Affine { x: q.x, y: q.y },
    ))
}

/// Computes the reduced Tate pairing of raw curve points.
///
/// Callers pass points of the order-`q` subgroup (the `G1`/`G2` wrappers
/// guarantee this). Identity in either slot yields `Gt::ONE`.
pub fn tate_pairing(p: &peace_curve::AffinePoint, q: &peace_curve::AffinePoint) -> Gt {
    ops::record_pairing();
    if p.is_identity() || q.is_identity() {
        return Gt::ONE;
    }
    let f = miller_loop(&Affine { x: p.x, y: p.y }, &Affine { x: q.x, y: q.y });
    final_exponentiation(&f)
}

/// Computes `∏ ê(Pᵢ, Qᵢ)` sharing one final exponentiation.
pub fn tate_pairing_product(pairs: &[(peace_curve::AffinePoint, peace_curve::AffinePoint)]) -> Gt {
    let mut f = Fp2::ONE;
    let mut any = false;
    for (p, q) in pairs {
        ops::record_pairing();
        if p.is_identity() || q.is_identity() {
            continue;
        }
        any = true;
        let fi = miller_loop(&Affine { x: p.x, y: p.y }, &Affine { x: q.x, y: q.y });
        f = f.mul(&fi);
    }
    if !any {
        return Gt::ONE;
    }
    final_exponentiation(&f)
}

/// Miller loop computing `f_{q,P}(φ(Q))` over the cached NAF schedule of
/// `q`, slope lines only.
fn miller_loop(p: &Affine, q: &Affine) -> Fp2 {
    ops::record_miller_loop();
    let digits = loop_naf();
    let neg_p = Affine {
        x: p.x,
        y: p.y.neg(),
    };
    let mut f = Fp2::ONE;
    let mut t = Jac {
        x: p.x,
        y: p.y,
        z: Fp::ONE,
    };
    // The top digit is 1 (it seeds T = P, f = 1); walk the rest MSB-first.
    for &d in digits[..digits.len() - 1].iter().rev() {
        let l = double_step(&mut t, q);
        f = f.square().mul(&l);
        if d == 1 {
            let l = add_step(&mut t, p, q);
            f = f.mul(&l);
        } else if d == -1 {
            let l = add_step(&mut t, &neg_p, q);
            f = f.mul(&l);
        }
    }
    f
}

/// Doubles `t` in place and returns the (scaled) tangent-line value at
/// `φ(Q)`. The scaling factor lies in `F_p` and vanishes under the final
/// exponentiation.
fn double_step(t: &mut Jac, q: &Affine) -> Fp2 {
    if t.z.is_zero() {
        return Fp2::ONE;
    }
    // y = 0 cannot occur for points of odd prime order, but guard anyway.
    if t.y.is_zero() {
        t.z = Fp::ZERO;
        return Fp2::ONE;
    }
    let xx = t.x.square();
    let yy = t.y.square();
    let yyyy = yy.square();
    let zz = t.z.square();
    // M = 3·X² + Z⁴   (curve a = 1)
    let m = xx.double().add(&xx).add(&zz.square());
    // S = 4·X·Y²
    let s = t.x.mul(&yy).double().double();
    let x3 = m.square().sub(&s.double());
    let y3 = m.mul(&s.sub(&x3)).sub(&yyyy.double().double().double());
    let z3 = t.y.mul(&t.z).double();
    // Line (scaled by 2YZ³ ∈ F_p):
    //   l = [M·(X + Z²·x_Q) − 2Y²] + [Z3·Z²·y_Q]·i
    let l_re = m.mul(&t.x.add(&zz.mul(&q.x))).sub(&yy.double());
    let l_im = z3.mul(&zz).mul(&q.y);
    t.x = x3;
    t.y = y3;
    t.z = z3;
    Fp2::new(l_re, l_im)
}

/// Adds affine `p` to `t` in place and returns the (scaled) chord-line value
/// at `φ(Q)`.
fn add_step(t: &mut Jac, p: &Affine, q: &Affine) -> Fp2 {
    if t.z.is_zero() {
        // T = O: "line" through O and P is vertical — value in F_p, skip.
        t.x = p.x;
        t.y = p.y;
        t.z = Fp::ONE;
        return Fp2::ONE;
    }
    let zz = t.z.square();
    let u2 = p.x.mul(&zz); // x_P·Z²
    let s2 = p.y.mul(&t.z).mul(&zz); // y_P·Z³
    let h = u2.sub(&t.x); // B
    let r = s2.sub(&t.y); // A
    if h.is_zero() {
        if r.is_zero() {
            // T == P: tangent line (degenerate chord) — double instead.
            return double_step(t, q);
        }
        // T == −P: vertical line, value in F_p → eliminated; result is O.
        t.z = Fp::ZERO;
        return Fp2::ONE;
    }
    let hh = h.square();
    let hhh = h.mul(&hh);
    let v = t.x.mul(&hh);
    let x3 = r.square().sub(&hhh).sub(&v.double());
    let y3 = r.mul(&v.sub(&x3)).sub(&t.y.mul(&hhh));
    // Z·B serves both as the new Z coordinate and the line scale factor.
    let zb = t.z.mul(&h);
    // Line through P with slope r/(Z·B), scaled by Z·B ∈ F_p:
    //   l = [A·(x_P + x_Q) − Z·B·y_P] + [Z·B·y_Q]·i
    let l_re = r.mul(&p.x.add(&q.x)).sub(&zb.mul(&p.y));
    let l_im = zb.mul(&q.y);
    t.x = x3;
    t.y = y3;
    t.z = zb;
    Fp2::new(l_re, l_im)
}

/// Final exponentiation `f ↦ f^((p²−1)/q) = (f^(p−1))^((p+1)/q)`.
///
/// `f^(p−1) = conj(f)·f⁻¹` (Frobenius is conjugation in `F_p²`) lands in the
/// norm-1 cyclotomic subgroup, so the 352-bit hard part runs as a unitary
/// wNAF exponentiation over the cached cofactor schedule — conjugation
/// replaces inversion on negative digits.
fn final_exponentiation(f: &Fp2) -> Gt {
    ops::record_final_exp();
    let f_inv = f.invert().expect("Miller value is nonzero");
    let easy = f.conjugate().mul(&f_inv);
    Gt::from_fp2(easy.pow_wnaf_unitary(cofactor_naf()))
}
