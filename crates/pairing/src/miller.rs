//! The reduced Tate pairing `ê : 𝔾₁ × 𝔾₂ → 𝔾_T` via the BKLS algorithm.
//!
//! For the supersingular curve `E: y² = x³ + x` over `p ≡ 3 (mod 4)` the
//! distortion map is `φ(x, y) = (−x, i·y)` with `i² = −1` in `F_p²`. The
//! modified pairing is
//!
//! ```text
//! ê(P, Q) = f_{q,P}(φ(Q))^((p²−1)/q)
//! ```
//!
//! Because the embedding degree is even, *denominator elimination* applies:
//! all vertical-line factors lie in `F_p` and are killed by the final
//! exponentiation (`(p²−1)/q = (p−1)·(p+1)/q` and `a^(p−1) = 1` for
//! `a ∈ F_p*`), so the Miller loop multiplies only slope-line values. Line
//! values at `φ(Q)` have the sparse shape `l = l_r + l_i·i` with `l_i`
//! proportional to `y_Q`, which keeps each step cheap.
//!
//! The loop runs over the 160-bit subgroup order `q` with Jacobian
//! coordinates (inversion-free).

use peace_field::{cofactor, subgroup_order, Fp, Fp2};

use crate::gt::Gt;
use crate::ops;

/// Raw affine input to the Miller loop.
#[derive(Clone, Copy)]
struct Affine {
    x: Fp,
    y: Fp,
}

/// Jacobian accumulator inside the Miller loop.
struct Jac {
    x: Fp,
    y: Fp,
    z: Fp,
}

/// Computes the reduced Tate pairing of raw curve points.
///
/// Callers pass points of the order-`q` subgroup (the `G1`/`G2` wrappers
/// guarantee this). Identity in either slot yields `Gt::ONE`.
pub fn tate_pairing(p: &peace_curve::AffinePoint, q: &peace_curve::AffinePoint) -> Gt {
    ops::record_pairing();
    if p.is_identity() || q.is_identity() {
        return Gt::ONE;
    }
    let f = miller_loop(
        &Affine { x: p.x, y: p.y },
        &Affine { x: q.x, y: q.y },
    );
    final_exponentiation(&f)
}

/// Computes `∏ ê(Pᵢ, Qᵢ)` sharing one final exponentiation.
pub fn tate_pairing_product(pairs: &[(peace_curve::AffinePoint, peace_curve::AffinePoint)]) -> Gt {
    let mut f = Fp2::ONE;
    let mut any = false;
    for (p, q) in pairs {
        ops::record_pairing();
        if p.is_identity() || q.is_identity() {
            continue;
        }
        any = true;
        let fi = miller_loop(
            &Affine { x: p.x, y: p.y },
            &Affine { x: q.x, y: q.y },
        );
        f = f.mul(&fi);
    }
    if !any {
        return Gt::ONE;
    }
    final_exponentiation(&f)
}

/// Miller loop computing `f_{q,P}(φ(Q))`, slope lines only.
fn miller_loop(p: &Affine, q: &Affine) -> Fp2 {
    let order = subgroup_order();
    let bits = order.bits();
    let mut f = Fp2::ONE;
    let mut t = Jac {
        x: p.x,
        y: p.y,
        z: Fp::ONE,
    };
    // MSB is bit (bits-1); start from bits-2.
    for i in (0..bits - 1).rev() {
        let l = double_step(&mut t, q);
        f = f.square().mul(&l);
        if order.bit(i) {
            let l = add_step(&mut t, p, q);
            f = f.mul(&l);
        }
    }
    f
}

/// Doubles `t` in place and returns the (scaled) tangent-line value at
/// `φ(Q)`. The scaling factor lies in `F_p` and vanishes under the final
/// exponentiation.
fn double_step(t: &mut Jac, q: &Affine) -> Fp2 {
    if t.z.is_zero() {
        return Fp2::ONE;
    }
    // y = 0 cannot occur for points of odd prime order, but guard anyway.
    if t.y.is_zero() {
        t.z = Fp::ZERO;
        return Fp2::ONE;
    }
    let xx = t.x.square();
    let yy = t.y.square();
    let yyyy = yy.square();
    let zz = t.z.square();
    // M = 3·X² + Z⁴   (curve a = 1)
    let m = xx.double().add(&xx).add(&zz.square());
    // S = 4·X·Y²
    let s = t.x.mul(&yy).double().double();
    let x3 = m.square().sub(&s.double());
    let y3 = m.mul(&s.sub(&x3)).sub(&yyyy.double().double().double());
    let z3 = t.y.mul(&t.z).double();
    // Line (scaled by 2YZ³ ∈ F_p):
    //   l = [M·(X + Z²·x_Q) − 2Y²] + [Z3·Z²·y_Q]·i
    let l_re = m.mul(&t.x.add(&zz.mul(&q.x))).sub(&yy.double());
    let l_im = z3.mul(&zz).mul(&q.y);
    t.x = x3;
    t.y = y3;
    t.z = z3;
    Fp2::new(l_re, l_im)
}

/// Adds affine `p` to `t` in place and returns the (scaled) chord-line value
/// at `φ(Q)`.
fn add_step(t: &mut Jac, p: &Affine, q: &Affine) -> Fp2 {
    if t.z.is_zero() {
        // T = O: "line" through O and P is vertical — value in F_p, skip.
        t.x = p.x;
        t.y = p.y;
        t.z = Fp::ONE;
        return Fp2::ONE;
    }
    let zz = t.z.square();
    let u2 = p.x.mul(&zz); // x_P·Z²
    let s2 = p.y.mul(&t.z).mul(&zz); // y_P·Z³
    let h = u2.sub(&t.x); // B
    let r = s2.sub(&t.y); // A
    if h.is_zero() {
        if r.is_zero() {
            // T == P: tangent line (degenerate chord) — double instead.
            return double_step(t, q);
        }
        // T == −P: vertical line, value in F_p → eliminated; result is O.
        t.z = Fp::ZERO;
        return Fp2::ONE;
    }
    let hh = h.square();
    let hhh = h.mul(&hh);
    let v = t.x.mul(&hh);
    let x3 = r.square().sub(&hhh).sub(&v.double());
    let y3 = r.mul(&v.sub(&x3)).sub(&t.y.mul(&hhh));
    let z3 = t.z.mul(&h);
    // Line through P with slope r/(Z·B), scaled by Z·B ∈ F_p:
    //   l = [A·(x_P + x_Q) − Z·B·y_P] + [Z·B·y_Q]·i
    let zb = t.z.mul(&h);
    let l_re = r.mul(&p.x.add(&q.x)).sub(&zb.mul(&p.y));
    let l_im = zb.mul(&q.y);
    t.x = x3;
    t.y = y3;
    t.z = z3;
    Fp2::new(l_re, l_im)
}

/// Final exponentiation `f ↦ f^((p²−1)/q) = (f^(p−1))^((p+1)/q)`.
///
/// `f^(p−1) = conj(f)·f⁻¹` (Frobenius is conjugation in `F_p²`), then a
/// plain exponentiation by the 352-bit cofactor `c = (p+1)/q`.
fn final_exponentiation(f: &Fp2) -> Gt {
    let f_inv = f.invert().expect("Miller value is nonzero");
    let easy = f.conjugate().mul(&f_inv);
    Gt::from_fp2(easy.pow(&cofactor()))
}
