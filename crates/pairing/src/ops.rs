//! Operation counters for the pairing layer (experiment E2).

use std::sync::atomic::{AtomicU64, Ordering};

static PAIRINGS: AtomicU64 = AtomicU64::new(0);
static GT_EXPS: AtomicU64 = AtomicU64::new(0);

/// Records one bilinear-map evaluation.
#[inline]
pub fn record_pairing() {
    PAIRINGS.fetch_add(1, Ordering::Relaxed);
}

/// Records one exponentiation in `𝔾_T`.
#[inline]
pub fn record_gt_exp() {
    GT_EXPS.fetch_add(1, Ordering::Relaxed);
}

/// Pairings evaluated since the last reset.
pub fn pairing_count() -> u64 {
    PAIRINGS.load(Ordering::Relaxed)
}

/// 𝔾_T exponentiations since the last reset.
pub fn gt_exp_count() -> u64 {
    GT_EXPS.load(Ordering::Relaxed)
}

/// Resets both counters.
pub fn reset() {
    PAIRINGS.store(0, Ordering::Relaxed);
    GT_EXPS.store(0, Ordering::Relaxed);
}

/// Snapshot of every operation counter in the crypto stack, for the E2
/// experiment ("signature generation requires about 8 exponentiations and 2
/// bilinear map computations").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Scalar multiplications in 𝔾₁/𝔾₂ (the paper's group exponentiations).
    pub g1_muls: u64,
    /// Exponentiations in 𝔾_T.
    pub gt_exps: u64,
    /// Bilinear map evaluations.
    pub pairings: u64,
}

impl OpSnapshot {
    /// Captures the current counter values.
    pub fn capture() -> Self {
        Self {
            g1_muls: peace_curve::ops::g1_mul_count(),
            gt_exps: gt_exp_count(),
            pairings: pairing_count(),
        }
    }

    /// Resets all counters (curve and pairing layers).
    pub fn reset_all() {
        peace_curve::ops::reset_g1_mul_count();
        reset();
    }

    /// Difference `self − earlier` (counts in a bracketed region).
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            g1_muls: self.g1_muls - earlier.g1_muls,
            gt_exps: self.gt_exps - earlier.gt_exps,
            pairings: self.pairings - earlier.pairings,
        }
    }

    /// Total "exponentiation-like" operations (group muls + Gt exps).
    pub fn total_exps(&self) -> u64 {
        self.g1_muls + self.gt_exps
    }
}
