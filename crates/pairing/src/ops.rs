//! Operation counters for the pairing layer (experiment E2).

use std::sync::atomic::{AtomicU64, Ordering};

static PAIRINGS: AtomicU64 = AtomicU64::new(0);
static GT_EXPS: AtomicU64 = AtomicU64::new(0);
static MILLER_LOOPS: AtomicU64 = AtomicU64::new(0);
static FINAL_EXPS: AtomicU64 = AtomicU64::new(0);

/// Records one bilinear-map evaluation.
#[inline]
pub fn record_pairing() {
    PAIRINGS.fetch_add(1, Ordering::Relaxed);
}

/// Records one exponentiation in `𝔾_T`.
#[inline]
pub fn record_gt_exp() {
    GT_EXPS.fetch_add(1, Ordering::Relaxed);
}

/// Records one Miller loop (the `f_{q,P}(φ(Q))` evaluation).
#[inline]
pub fn record_miller_loop() {
    MILLER_LOOPS.fetch_add(1, Ordering::Relaxed);
}

/// Records one final exponentiation (one `f ↦ f^((p²−1)/q)` pass; a batch
/// sharing a single hard-part sweep counts once).
#[inline]
pub fn record_final_exp() {
    FINAL_EXPS.fetch_add(1, Ordering::Relaxed);
}

/// Pairings evaluated since the last reset.
pub fn pairing_count() -> u64 {
    PAIRINGS.load(Ordering::Relaxed)
}

/// 𝔾_T exponentiations since the last reset.
pub fn gt_exp_count() -> u64 {
    GT_EXPS.load(Ordering::Relaxed)
}

/// Miller loops since the last reset.
pub fn miller_loop_count() -> u64 {
    MILLER_LOOPS.load(Ordering::Relaxed)
}

/// Final exponentiations since the last reset.
pub fn final_exp_count() -> u64 {
    FINAL_EXPS.load(Ordering::Relaxed)
}

/// Resets all pairing-layer counters.
pub fn reset() {
    PAIRINGS.store(0, Ordering::Relaxed);
    GT_EXPS.store(0, Ordering::Relaxed);
    MILLER_LOOPS.store(0, Ordering::Relaxed);
    FINAL_EXPS.store(0, Ordering::Relaxed);
}

/// Snapshot of every operation counter in the crypto stack, for the E2
/// experiment ("signature generation requires about 8 exponentiations and 2
/// bilinear map computations").
///
/// `pairings` counts *logical* bilinear-map evaluations (the paper's unit);
/// `miller_loops`/`final_exps` break those down into their two phases, which
/// is what the shared-Miller revocation sweep actually saves: a sweep over
/// `n` tokens costs `n + 1` Miller loops and `1` final exponentiation
/// instead of `2n` of each.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Scalar multiplications in 𝔾₁/𝔾₂ (the paper's group exponentiations).
    pub g1_muls: u64,
    /// Exponentiations in 𝔾_T.
    pub gt_exps: u64,
    /// Bilinear map evaluations.
    pub pairings: u64,
    /// Miller loops (including those inside `pairings`).
    pub miller_loops: u64,
    /// Final exponentiations (batched sweeps count once).
    pub final_exps: u64,
}

impl OpSnapshot {
    /// Captures the current counter values.
    pub fn capture() -> Self {
        Self {
            g1_muls: peace_curve::ops::g1_mul_count(),
            gt_exps: gt_exp_count(),
            pairings: pairing_count(),
            miller_loops: miller_loop_count(),
            final_exps: final_exp_count(),
        }
    }

    /// Resets all counters (curve and pairing layers).
    pub fn reset_all() {
        peace_curve::ops::reset_g1_mul_count();
        reset();
    }

    /// Difference `self − earlier` (counts in a bracketed region).
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            g1_muls: self.g1_muls - earlier.g1_muls,
            gt_exps: self.gt_exps - earlier.gt_exps,
            pairings: self.pairings - earlier.pairings,
            miller_loops: self.miller_loops - earlier.miller_loops,
            final_exps: self.final_exps - earlier.final_exps,
        }
    }

    /// Total "exponentiation-like" operations (group muls + Gt exps).
    pub fn total_exps(&self) -> u64 {
        self.g1_muls + self.gt_exps
    }
}
