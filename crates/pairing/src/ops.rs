//! Operation counters for the pairing layer (experiment E2).
//!
//! The counters now live in the process-wide `peace-telemetry` registry
//! under `crypto.*`; the functions here are thin compat shims over cached
//! registry handles, so existing callers and the historical API keep
//! working while `peace-noded --metrics-json` and the bench emitters can
//! export the same numbers without a parallel counting path.
//!
//! For measurements, prefer [`OpScope`] over calling [`reset`] directly:
//! the counters are process-global, so two test threads resetting and
//! reading concurrently clobber each other. `OpScope` serializes bracketed
//! regions behind one mutex and resets on entry.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use peace_telemetry::{global, Counter};

/// Registry name of the bilinear-map counter.
pub const PAIRING: &str = "crypto.pairing";
/// Registry name of the 𝔾_T exponentiation counter.
pub const GT_EXP: &str = "crypto.gt_exp";
/// Registry name of the Miller-loop counter.
pub const MILLER_LOOP: &str = "crypto.miller_loop";
/// Registry name of the final-exponentiation counter.
pub const FINAL_EXP: &str = "crypto.final_exp";

fn handle(name: &'static str, cell: &'static OnceLock<Arc<Counter>>) -> &'static Arc<Counter> {
    cell.get_or_init(|| global().counter(name))
}

fn pairings() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    handle(PAIRING, &C)
}

fn gt_exps() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    handle(GT_EXP, &C)
}

fn miller_loops() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    handle(MILLER_LOOP, &C)
}

fn final_exps() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    handle(FINAL_EXP, &C)
}

/// Records one bilinear-map evaluation.
#[inline]
pub fn record_pairing() {
    pairings().inc();
}

/// Records one exponentiation in `𝔾_T`.
#[inline]
pub fn record_gt_exp() {
    gt_exps().inc();
}

/// Records one Miller loop (the `f_{q,P}(φ(Q))` evaluation).
#[inline]
pub fn record_miller_loop() {
    miller_loops().inc();
}

/// Records one final exponentiation (one `f ↦ f^((p²−1)/q)` pass; a batch
/// sharing a single hard-part sweep counts once).
#[inline]
pub fn record_final_exp() {
    final_exps().inc();
}

/// Pairings evaluated since the last reset.
pub fn pairing_count() -> u64 {
    pairings().get()
}

/// 𝔾_T exponentiations since the last reset.
pub fn gt_exp_count() -> u64 {
    gt_exps().get()
}

/// Miller loops since the last reset.
pub fn miller_loop_count() -> u64 {
    miller_loops().get()
}

/// Final exponentiations since the last reset.
pub fn final_exp_count() -> u64 {
    final_exps().get()
}

/// Resets all pairing-layer counters. Prefer [`OpScope`], which also
/// excludes concurrent measurement regions.
pub fn reset() {
    pairings().reset();
    gt_exps().reset();
    miller_loops().reset();
    final_exps().reset();
}

/// RAII guard for a counted measurement region.
///
/// The op counters are process-global; parallel test binaries that call
/// [`OpSnapshot::reset_all`] and then assert exact counts race with each
/// other. An `OpScope` takes a process-wide lock for its lifetime and
/// resets every counter (curve and pairing layers) on entry, so counts
/// observed inside the scope belong to the scope alone — provided all
/// measuring regions go through `OpScope`. Dropping the guard releases
/// the lock; the counters keep their final values for later snapshots.
#[must_use = "the scope guard serializes measurements for as long as it lives"]
#[derive(Debug)]
pub struct OpScope {
    _guard: MutexGuard<'static, ()>,
}

impl OpScope {
    /// Acquires the measurement lock and zeroes all op counters.
    pub fn enter() -> Self {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            // A panic inside another scope only means its measurement was
            // abandoned; the lock itself is still usable.
            Err(poisoned) => poisoned.into_inner(),
        };
        OpSnapshot::reset_all();
        Self { _guard: guard }
    }

    /// Counts recorded since this scope was entered (or since the last
    /// [`OpSnapshot::reset_all`] inside it).
    pub fn counts(&self) -> OpSnapshot {
        OpSnapshot::capture()
    }
}

/// Snapshot of every operation counter in the crypto stack, for the E2
/// experiment ("signature generation requires about 8 exponentiations and 2
/// bilinear map computations").
///
/// `pairings` counts *logical* bilinear-map evaluations (the paper's unit);
/// `miller_loops`/`final_exps` break those down into their two phases, which
/// is what the shared-Miller revocation sweep actually saves: a sweep over
/// `n` tokens costs `n + 1` Miller loops and `1` final exponentiation
/// instead of `2n` of each.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Scalar multiplications in 𝔾₁/𝔾₂ (the paper's group exponentiations).
    pub g1_muls: u64,
    /// Exponentiations in 𝔾_T.
    pub gt_exps: u64,
    /// Bilinear map evaluations.
    pub pairings: u64,
    /// Miller loops (including those inside `pairings`).
    pub miller_loops: u64,
    /// Final exponentiations (batched sweeps count once).
    pub final_exps: u64,
}

impl OpSnapshot {
    /// Captures the current counter values.
    pub fn capture() -> Self {
        Self {
            g1_muls: peace_curve::ops::g1_mul_count(),
            gt_exps: gt_exp_count(),
            pairings: pairing_count(),
            miller_loops: miller_loop_count(),
            final_exps: final_exp_count(),
        }
    }

    /// Enters a serialized, zeroed measurement region ([`OpScope::enter`]).
    pub fn scope() -> OpScope {
        OpScope::enter()
    }

    /// Resets all counters (curve and pairing layers).
    pub fn reset_all() {
        peace_curve::ops::reset_g1_mul_count();
        reset();
    }

    /// Difference `self − earlier` (counts in a bracketed region).
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            g1_muls: self.g1_muls - earlier.g1_muls,
            gt_exps: self.gt_exps - earlier.gt_exps,
            pairings: self.pairings - earlier.pairings,
            miller_loops: self.miller_loops - earlier.miller_loops,
            final_exps: self.final_exps - earlier.final_exps,
        }
    }

    /// Total "exponentiation-like" operations (group muls + Gt exps).
    pub fn total_exps(&self) -> u64 {
        self.g1_muls + self.gt_exps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_resets_and_counts() {
        let scope = OpScope::enter();
        assert_eq!(scope.counts(), OpSnapshot::default());
        record_pairing();
        record_gt_exp();
        record_gt_exp();
        peace_curve::ops::record_g1_mul();
        let got = scope.counts();
        assert_eq!(got.pairings, 1);
        assert_eq!(got.gt_exps, 2);
        assert_eq!(got.g1_muls, 1);
        assert_eq!(got.total_exps(), 3);
    }

    #[test]
    fn scopes_do_not_interleave() {
        // Two threads each bracket their own region; with the scope lock,
        // each must observe exactly its own operations.
        let mut handles = Vec::new();
        for n in 1..=4u64 {
            handles.push(std::thread::spawn(move || {
                let scope = OpScope::enter();
                for _ in 0..n {
                    record_miller_loop();
                }
                scope.counts().miller_loops == n
            }));
        }
        for h in handles {
            assert!(h.join().unwrap_or(false));
        }
    }
}
