//! End-to-end smoke for the open-loop driver: a real router daemon on
//! loopback, three worker agents, a short Poisson schedule — every
//! arrival must complete and the latency distributions must be sane.

use std::time::Duration;

use peace_loadgen::{run_open_loop, ArrivalProcess, LoadConfig};
use peace_net::{build_world, ConnConfig, DaemonConfig, RouterDaemon, UserAgent, WorldSpec};

fn test_cfg() -> DaemonConfig {
    DaemonConfig {
        conn: ConnConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            ..ConnConfig::default()
        },
        max_connections: 64,
        connect_timeout: Duration::from_secs(5),
        drain: Duration::from_secs(3),
        ..DaemonConfig::default()
    }
}

#[test]
fn open_loop_drives_real_daemon() {
    let spec = WorldSpec {
        seed: 0x10AD,
        users: 3,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let cfg = test_cfg();
    let mut router = w.routers.into_iter().next().unwrap();
    let now = peace_net::clock::wall_ms();
    router.update_lists(w.no.publish_crl(now), w.no.publish_url(now));
    let daemon = RouterDaemon::spawn(router, 1, "127.0.0.1:0", cfg).unwrap();
    let routers = vec![daemon.addr()];

    let agents: Vec<UserAgent> = w
        .users
        .into_iter()
        .enumerate()
        .map(|(i, u)| UserAgent::new(u, 0x5EED + i as u64, cfg))
        .collect();

    let load = LoadConfig {
        rate_per_sec: 25.0,
        duration_ms: 1_200,
        process: ArrivalProcess::Poisson,
        echo_per_session: 1,
        hold_sessions: false,
        ..LoadConfig::default()
    };
    let (outcome, agents_back) = run_open_loop(agents, &routers, &load);

    assert!(outcome.offered > 0, "schedule must offer arrivals");
    assert_eq!(
        outcome.completed, outcome.offered,
        "healthy daemon completes every arrival: {outcome:?}"
    );
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.echoes, outcome.completed);
    assert_eq!(outcome.hs_total_us.count, outcome.completed);
    assert_eq!(outcome.session_us.count, outcome.completed);
    // Session latency (from scheduled arrival) can never undercut the
    // raw handshake, and percentiles must be ordered.
    assert!(outcome.session_us.percentile(0.5) > 0);
    let p50 = outcome.session_us.percentile(0.50);
    let p99 = outcome.session_us.percentile(0.99);
    assert!(p50 <= p99, "{p50} vs {p99}");
    // Worker telemetry merged across agents.
    assert_eq!(
        outcome
            .telemetry
            .counters
            .get("net.handshakes_ok")
            .copied()
            .unwrap_or(0),
        outcome.completed
    );
    assert_eq!(agents_back.len(), 3, "agents returned for reuse");

    assert_eq!(daemon.metrics().handler_panics, 0);
    daemon.shutdown().unwrap();
}

#[test]
fn hold_mode_tracks_peak_concurrency() {
    let spec = WorldSpec {
        seed: 0x401D,
        users: 2,
        routers: 1,
    };
    let w = build_world(&spec).unwrap();
    let cfg = test_cfg();
    let mut router = w.routers.into_iter().next().unwrap();
    let now = peace_net::clock::wall_ms();
    router.update_lists(w.no.publish_crl(now), w.no.publish_url(now));
    let daemon = RouterDaemon::spawn(router, 2, "127.0.0.1:0", cfg).unwrap();
    let routers = vec![daemon.addr()];

    let agents: Vec<UserAgent> = w
        .users
        .into_iter()
        .enumerate()
        .map(|(i, u)| UserAgent::new(u, 0xA0 + i as u64, cfg))
        .collect();

    let load = LoadConfig {
        rate_per_sec: 20.0,
        duration_ms: 700,
        process: ArrivalProcess::Uniform,
        echo_per_session: 0,
        hold_sessions: true,
        ..LoadConfig::default()
    };
    let (outcome, _) = run_open_loop(agents, &routers, &load);
    assert!(outcome.completed > 0);
    // Workers release their held sessions only after the shared queue
    // drains, so the peak reaches within one in-flight session per
    // worker of the total.
    assert!(
        outcome.peak_concurrent >= outcome.completed.saturating_sub(2),
        "peak {} vs completed {}",
        outcome.peak_concurrent,
        outcome.completed
    );
    daemon.shutdown().unwrap();
}
