//! Property tests for the arrival-schedule generator: byte-identical
//! reproduction under a fixed seed, configured-rate adherence within
//! statistical tolerance, and ordering invariants.

use peace_loadgen::{build_schedule, ArrivalProcess};
use proptest::prelude::*;

proptest! {
    /// The open-loop contract: a seeded schedule is a pure function of
    /// its inputs — two builds are byte-identical.
    #[test]
    fn seeded_schedule_is_byte_identical(
        seed in any::<u64>(),
        rate in 20.0f64..400.0,
        duration_ms in 500u64..4_000,
        poisson in any::<bool>(),
    ) {
        let process = if poisson { ArrivalProcess::Poisson } else { ArrivalProcess::Uniform };
        let a = build_schedule(process, rate, duration_ms, seed);
        let b = build_schedule(process, rate, duration_ms, seed);
        prop_assert_eq!(a, b);
    }

    /// Arrival counts track the configured rate: exactly for Uniform,
    /// within ±6σ for Poisson (σ = √n for a Poisson count).
    #[test]
    fn schedule_hits_configured_rate(
        seed in any::<u64>(),
        rate in 50.0f64..400.0,
        duration_ms in 1_000u64..5_000,
    ) {
        let expected = rate * duration_ms as f64 / 1_000.0;

        let uni = build_schedule(ArrivalProcess::Uniform, rate, duration_ms, seed);
        prop_assert!(
            (uni.len() as f64 - expected).abs() <= 1.0,
            "uniform: n={} expected={expected}", uni.len()
        );

        let poi = build_schedule(ArrivalProcess::Poisson, rate, duration_ms, seed);
        let tol = 6.0 * expected.sqrt() + 1.0;
        prop_assert!(
            (poi.len() as f64 - expected).abs() <= tol,
            "poisson: n={} expected={expected} tol={tol}", poi.len()
        );
    }

    /// Every schedule is sorted and strictly inside the duration window.
    #[test]
    fn schedule_is_sorted_and_bounded(
        seed in any::<u64>(),
        rate in 20.0f64..300.0,
        duration_ms in 200u64..3_000,
        poisson in any::<bool>(),
    ) {
        let process = if poisson { ArrivalProcess::Poisson } else { ArrivalProcess::Uniform };
        let s = build_schedule(process, rate, duration_ms, seed);
        prop_assert!(s.windows(2).all(|w| w[0] <= w[1]));
        if let Some(&last) = s.last() {
            prop_assert!(last < duration_ms * 1_000);
        }
    }
}
