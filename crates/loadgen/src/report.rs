//! Renders sim and TCP results as the `BENCH_load.json` artifact.

use peace_sim::{CityConfig, CityReport};
use peace_telemetry::bench::BenchReport;
use peace_telemetry::Snapshot;

use crate::openloop::{LoadConfig, LoadOutcome, RampConfig, RampOutcome};

/// A completed city-simulation run plus its wall-clock cost.
#[derive(Debug)]
pub struct SimRunSummary<'a> {
    /// The scenario configuration that ran.
    pub cfg: &'a CityConfig,
    /// Its report.
    pub report: &'a CityReport,
    /// Wall time the run took (measured by the caller — the sim itself
    /// is deterministic and clock-free).
    pub elapsed_ms: u64,
}

/// A completed open-loop TCP run.
#[derive(Debug)]
pub struct TcpRunSummary<'a> {
    /// The load configuration that ran.
    pub cfg: &'a LoadConfig,
    /// Its outcome.
    pub outcome: &'a LoadOutcome,
    /// Worker (agent) count.
    pub workers: u64,
    /// Target router count.
    pub routers: u64,
}

/// A completed ramp search.
#[derive(Debug)]
pub struct RampRunSummary<'a> {
    /// The search configuration.
    pub cfg: &'a RampConfig,
    /// What the search concluded.
    pub outcome: &'a RampOutcome,
    /// Worker (agent) count.
    pub workers: u64,
    /// I/O shards the target daemons ran with (0 = blocking runtime).
    pub shards: u64,
}

/// Appends the ramp-search results to a bench report: the headline
/// `ramp_max_rate_per_sec`, the SLO it was measured against, and every
/// probe as a JSON array so a regression is diagnosable from the
/// artifact alone.
pub fn append_ramp(r: &mut BenchReport, ramp: &RampRunSummary<'_>) {
    let o = ramp.outcome;
    r.uint("ramp_workers", ramp.workers)
        .uint("ramp_shards", ramp.shards)
        .uint("ramp_slo_p99_us", ramp.cfg.slo_p99_us)
        .float("ramp_min_success", ramp.cfg.min_success, 3)
        .float("ramp_floor_rate_per_sec", ramp.cfg.min_rate, 1)
        .float("ramp_ceiling_rate_per_sec", ramp.cfg.max_rate, 1)
        .uint("ramp_probe_count", o.probes.len() as u64)
        .float("ramp_max_rate_per_sec", o.max_sustainable_rate, 1);
    if let Some(best) = &o.best {
        r.float(
            "ramp_best_achieved_per_sec",
            per_sec(best.completed, best.elapsed_ms),
            1,
        )
        .uint("ramp_best_session_p99_us", best.session_us.percentile(0.99))
        .uint("ramp_best_hs_p99_us", best.hs_total_us.percentile(0.99));
    }
    let probes: Vec<String> = o
        .probes
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{\"rate_per_sec\":{:.1},\"passed\":{},\"offered\":{},",
                    "\"completed\":{},\"failed\":{},\"session_p99_us\":{},",
                    "\"achieved_per_sec\":{:.1}}}"
                ),
                p.rate_per_sec,
                p.passed,
                p.offered,
                p.completed,
                p.failed,
                p.session_p99_us,
                p.achieved_per_sec,
            )
        })
        .collect();
    r.json("ramp_probes", &format!("[{}]", probes.join(",")));
}

/// Builds the `loadgen` bench report from whichever halves ran.
///
/// Field narrative: simulation first (what load the city produces), then
/// the TCP half (what the implementation sustained), each ending with an
/// embedded `peace-telemetry-v1` snapshot.
pub fn build_report(sim: Option<SimRunSummary<'_>>, tcp: Option<TcpRunSummary<'_>>) -> BenchReport {
    let mut r = BenchReport::new("loadgen");
    if let Some(s) = sim {
        let t = &s.report.totals;
        r.uint("sim_users", u64::from(t.users))
            .uint("sim_routers", u64::from(t.routers))
            .uint("sim_shards", s.cfg.shards as u64)
            .uint("sim_epochs", t.epochs)
            .text("sim_scenario", &format!("{:?}", s.cfg.scenario))
            .text("sim_digest", &format!("{:016x}", s.report.digest))
            .uint("sim_auth_attempts", t.auth_attempts)
            .uint("sim_auth_accepted", t.auth_accepted)
            .uint("sim_auth_dropped", t.auth_dropped)
            .uint("sim_auth_rejected_revoked", t.auth_rejected_revoked)
            .uint("sim_roams", t.roams)
            .uint("sim_disconnected", t.disconnected)
            .uint("sim_url_len", t.url_len)
            .uint("sim_auth_p50_us", t.latency.percentile(0.50))
            .uint("sim_auth_p95_us", t.latency.percentile(0.95))
            .uint("sim_auth_p99_us", t.latency.percentile(0.99))
            .uint("sim_elapsed_ms", s.elapsed_ms)
            .uint(
                "sim_user_epochs_per_sec",
                rate(u64::from(t.users) * t.epochs, s.elapsed_ms),
            );
        let mut merged = Snapshot::default();
        for (name, snap) in &s.report.phases {
            merged.merge_prefixed(snap, name);
        }
        r.json("sim_telemetry", &merged.to_json());
    }
    if let Some(t) = tcp {
        let o = t.outcome;
        r.uint("tcp_workers", t.workers)
            .uint("tcp_routers", t.routers)
            .float("tcp_rate_per_sec", t.cfg.rate_per_sec, 1)
            .uint("tcp_offered", o.offered)
            .uint("tcp_sessions", o.completed)
            .uint("tcp_failed", o.failed)
            .uint("tcp_conn_rejected", o.conn_rejected)
            .uint("tcp_echoes", o.echoes)
            .uint("tcp_peak_concurrent", o.peak_concurrent)
            .uint("tcp_elapsed_ms", o.elapsed_ms)
            .float(
                "tcp_handshakes_per_sec",
                per_sec(o.completed, o.elapsed_ms),
                1,
            )
            .float(
                // Authenticated operations per second: granted accesses
                // plus AEAD echoes on the established sessions.
                "tcp_access_per_sec",
                per_sec(o.completed + o.echoes, o.elapsed_ms),
                1,
            )
            .uint("tcp_hs_p50_us", o.hs_total_us.percentile(0.50))
            .uint("tcp_hs_p95_us", o.hs_total_us.percentile(0.95))
            .uint("tcp_hs_p99_us", o.hs_total_us.percentile(0.99))
            .uint("tcp_session_p50_us", o.session_us.percentile(0.50))
            .uint("tcp_session_p95_us", o.session_us.percentile(0.95))
            .uint("tcp_session_p99_us", o.session_us.percentile(0.99));
        r.json("tcp_telemetry", &o.telemetry.to_json());
    }
    r
}

fn per_sec(n: u64, elapsed_ms: u64) -> f64 {
    if elapsed_ms == 0 {
        0.0
    } else {
        n as f64 * 1_000.0 / elapsed_ms as f64
    }
}

fn rate(n: u64, elapsed_ms: u64) -> u64 {
    n.saturating_mul(1_000).checked_div(elapsed_ms).unwrap_or(0)
}
