//! peace-loadgen: the measurement harness behind every scaling claim in
//! the workspace.
//!
//! Two halves, one report:
//!
//! * **City-scale simulation** ([`peace_sim::city`]) — a sharded,
//!   deterministic cost model of a metropolitan deployment (10⁵–10⁶
//!   users) with scripted scenarios (flash crowds, mass revocation,
//!   epoch rollovers, partitions). This half answers *"what load shape
//!   does the city produce?"* without touching a socket.
//! * **Open-loop TCP load generation** ([`openloop`]) — real
//!   [`UserAgent`](peace_net::UserAgent)s driving real `peace-noded`
//!   daemons over loopback (or any address) at a configured arrival
//!   rate from a seeded schedule ([`schedule`]). This half answers
//!   *"what does the implementation actually sustain?"*
//!
//! **Open-loop, not closed-loop.** A closed-loop driver (N workers, each
//! issuing its next request when the previous one completes) lets the
//! system under test set the pace: when the daemon slows down, offered
//! load politely drops and latency looks flat. An open-loop driver fixes
//! the *arrival schedule up front* — arrivals keep their scheduled
//! timestamps whether or not earlier sessions finished, and latency is
//! measured **from the scheduled arrival**, so backlog shows up where it
//! belongs: in p99. The schedule is seeded and byte-deterministic, so
//! two runs offer the identical arrival sequence.
//!
//! Results render as one `peace-bench-v1` artifact (`BENCH_load.json`,
//! [`report`]) validated by `tools/check_bench.py` in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod openloop;
pub mod report;
pub mod schedule;

pub use openloop::{
    ramp_search, run_open_loop, LoadConfig, LoadOutcome, RampConfig, RampOutcome, RampProbe,
};
pub use report::{append_ramp, build_report, RampRunSummary, SimRunSummary, TcpRunSummary};
pub use schedule::{build_schedule, ArrivalProcess};
