//! The open-loop TCP driver: seeded arrival schedule in, latency
//! distributions out.
//!
//! Arrivals are timestamped by [`build_schedule`] before the run starts.
//! Worker threads (each owning one enrolled [`UserAgent`]) drain the
//! arrival queue; a worker sleeps until an arrival's scheduled instant,
//! then runs the full anonymous-access handshake against the target
//! router via [`UserAgent::connect_with_retry`] — transient refusals
//! (connection caps, accept-queue overflow, timeouts) back off and
//! retry; terminal refusals (revocation) fail the session. Crucially the
//! *schedule never moves*: if the system under test falls behind, later
//! arrivals are served late and the lateness is measured, not forgiven —
//! `session_us` latency counts from the **scheduled** arrival instant,
//! so queueing delay lands in p99 where an operator would see it.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use peace_net::{UserAgent, UserSession};
use peace_protocol::RetryPolicy;
use peace_telemetry::{Histogram, HistogramSnapshot, Snapshot};

use crate::schedule::{build_schedule, ArrivalProcess};

/// Configuration for one open-loop run.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Offered arrival rate (sessions per second).
    pub rate_per_sec: f64,
    /// Schedule length in wall milliseconds.
    pub duration_ms: u64,
    /// Inter-arrival process.
    pub process: ArrivalProcess,
    /// Schedule seed (worker jitter derives from it too).
    pub seed: u64,
    /// AEAD echo round-trips per established session.
    pub echo_per_session: u32,
    /// Keep established sessions open until the schedule drains (drives
    /// peak *concurrent* session count instead of session churn).
    pub hold_sessions: bool,
    /// Backoff policy for transient handshake failures.
    pub retry: RetryPolicy,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: 50.0,
            duration_ms: 4_000,
            process: ArrivalProcess::Poisson,
            seed: 0x10AD_5EED,
            echo_per_session: 1,
            hold_sessions: false,
            retry: RetryPolicy {
                base_delay: 100,
                max_delay: 1_500,
                max_attempts: 6,
            },
        }
    }
}

/// What one open-loop run measured.
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// Arrivals in the schedule.
    pub offered: u64,
    /// Sessions fully established (handshake completed).
    pub completed: u64,
    /// Sessions that exhausted retries or hit a terminal refusal.
    pub failed: u64,
    /// Client-observed connection-cap rejections (`net.conn_rejected`,
    /// summed over workers — each one was retried, not failed).
    pub conn_rejected: u64,
    /// Successful AEAD echo round-trips.
    pub echoes: u64,
    /// Peak simultaneously-held session count (meaningful with
    /// `hold_sessions`).
    pub peak_concurrent: u64,
    /// Wall time from first arrival to last completion (ms).
    pub elapsed_ms: u64,
    /// Handshake latency (dial → session key), merged over workers.
    pub hs_total_us: HistogramSnapshot,
    /// Scheduled-arrival → session-established latency: includes queue
    /// wait and retries, the open-loop headline number.
    pub session_us: HistogramSnapshot,
    /// Merged worker telemetry (counters + histograms; events dropped).
    pub telemetry: Snapshot,
}

/// Merges `src` into `dst` without prefixing: counters add, histograms
/// merge on the shared grid. Events are dropped (their interleaving is
/// not deterministic across workers).
fn merge_unprefixed(dst: &mut Snapshot, src: &Snapshot) {
    for (k, v) in &src.counters {
        *dst.counters.entry(k.clone()).or_insert(0) += v;
    }
    for (k, h) in &src.histograms {
        dst.histograms.entry(k.clone()).or_default().merge(h);
    }
}

/// Configuration for a ramp search: find the highest offered rate the
/// target sustains while honoring a p99 latency SLO.
#[derive(Clone, Copy, Debug)]
pub struct RampConfig {
    /// Per-probe load shape (duration, process, echo count, retries).
    /// `rate_per_sec` inside is ignored — the search chooses each rate.
    pub base: LoadConfig,
    /// Scheduled-arrival → session-established p99 budget (µs). A probe
    /// whose `session_us` p99 exceeds this fails.
    pub slo_p99_us: u64,
    /// Fraction of offered arrivals that must complete for a probe to
    /// pass (terminal failures and exhausted retries count against it).
    pub min_success: f64,
    /// Search floor (sessions/s). If even this rate fails, the search
    /// reports `max_sustainable_rate = 0`.
    pub min_rate: f64,
    /// Search ceiling (sessions/s).
    pub max_rate: f64,
    /// Binary-search probe budget after the ceiling/floor probes.
    pub probes: u32,
}

impl Default for RampConfig {
    fn default() -> Self {
        Self {
            base: LoadConfig::default(),
            slo_p99_us: 500_000,
            min_success: 0.99,
            min_rate: 10.0,
            max_rate: 2_000.0,
            probes: 5,
        }
    }
}

/// One rate probe within a ramp search.
#[derive(Clone, Debug)]
pub struct RampProbe {
    /// Offered rate this probe ran at (sessions/s).
    pub rate_per_sec: f64,
    /// Whether the probe met the SLO and the success floor.
    pub passed: bool,
    /// Arrivals in the probe's schedule.
    pub offered: u64,
    /// Sessions established.
    pub completed: u64,
    /// Sessions lost to terminal refusals or exhausted retries.
    pub failed: u64,
    /// Scheduled-arrival → established p99 (µs) the probe observed.
    pub session_p99_us: u64,
    /// Achieved handshake completion rate (sessions/s of wall time).
    pub achieved_per_sec: f64,
}

/// What a ramp search concluded.
#[derive(Clone, Debug)]
pub struct RampOutcome {
    /// Every probe, in execution order.
    pub probes: Vec<RampProbe>,
    /// Highest probed rate that met the SLO (0 when even the floor
    /// failed).
    pub max_sustainable_rate: f64,
    /// The full outcome of the best passing probe.
    pub best: Option<LoadOutcome>,
}

/// Binary-searches the highest sustainable offered rate under an SLO.
///
/// Probes the ceiling first (if the target absorbs `max_rate`, there is
/// nothing to search), then the floor, then bisects: a passing rate
/// moves the floor up, a failing one pulls the ceiling down. Each probe
/// is a fresh [`run_open_loop`] pass with a distinct schedule seed, so
/// probes are independent measurements, not replays. The agents thread
/// through every probe (enrollment amortized once).
///
/// # Panics
///
/// `agents` and `routers` must be non-empty (see [`run_open_loop`]).
pub fn ramp_search(
    agents: Vec<UserAgent>,
    routers: &[SocketAddr],
    cfg: &RampConfig,
) -> (RampOutcome, Vec<UserAgent>) {
    let mut probes = Vec::new();
    let mut best: Option<(f64, LoadOutcome)> = None;
    let mut agents = agents;

    let probe = |rate: f64,
                 agents: Vec<UserAgent>,
                 probes: &mut Vec<RampProbe>,
                 best: &mut Option<(f64, LoadOutcome)>|
     -> (bool, Vec<UserAgent>) {
        let run_cfg = LoadConfig {
            rate_per_sec: rate,
            seed: cfg
                .base
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(probes.len() as u64 + 1)),
            ..cfg.base
        };
        let (outcome, back) = run_open_loop(agents, routers, &run_cfg);
        let p99 = outcome.session_us.percentile(0.99);
        let floor = (outcome.offered as f64 * cfg.min_success).ceil() as u64;
        let passed = p99 <= cfg.slo_p99_us && outcome.completed >= floor;
        probes.push(RampProbe {
            rate_per_sec: rate,
            passed,
            offered: outcome.offered,
            completed: outcome.completed,
            failed: outcome.failed,
            session_p99_us: p99,
            achieved_per_sec: if outcome.elapsed_ms == 0 {
                0.0
            } else {
                outcome.completed as f64 * 1_000.0 / outcome.elapsed_ms as f64
            },
        });
        if passed && best.as_ref().is_none_or(|(r, _)| rate > *r) {
            *best = Some((rate, outcome));
        }
        (passed, back)
    };

    // Ceiling first: if the target absorbs max_rate, search over.
    let (ceiling_ok, back) = probe(cfg.max_rate, agents, &mut probes, &mut best);
    agents = back;
    if !ceiling_ok {
        // Floor next: if even min_rate fails, report zero.
        let (floor_ok, back) = probe(cfg.min_rate, agents, &mut probes, &mut best);
        agents = back;
        if floor_ok {
            let (mut lo, mut hi) = (cfg.min_rate, cfg.max_rate);
            for _ in 0..cfg.probes {
                let mid = (lo + hi) / 2.0;
                if hi - lo < 1.0 {
                    break;
                }
                let (ok, back) = probe(mid, agents, &mut probes, &mut best);
                agents = back;
                if ok {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
    }

    let (max_sustainable_rate, best) = match best {
        Some((r, o)) => (r, Some(o)),
        None => (0.0, None),
    };
    (
        RampOutcome {
            probes,
            max_sustainable_rate,
            best,
        },
        agents,
    )
}

/// Runs one open-loop load generation pass.
///
/// Each element of `agents` becomes one worker thread; arrivals are
/// assigned round-robin over `routers` by schedule index. Returns the
/// outcome plus the agents (still enrolled, reusable for another pass).
///
/// # Panics
///
/// `agents` and `routers` must be non-empty.
pub fn run_open_loop(
    agents: Vec<UserAgent>,
    routers: &[SocketAddr],
    cfg: &LoadConfig,
) -> (LoadOutcome, Vec<UserAgent>) {
    assert!(!agents.is_empty(), "need at least one worker agent");
    assert!(!routers.is_empty(), "need at least one target router");
    let schedule = build_schedule(cfg.process, cfg.rate_per_sec, cfg.duration_ms, cfg.seed);
    let offered = schedule.len() as u64;
    let queue: Mutex<VecDeque<(u64, u64)>> = Mutex::new(
        schedule
            .into_iter()
            .enumerate()
            .map(|(i, at)| (i as u64, at))
            .collect(),
    );
    let session_us = Arc::new(Histogram::default());
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let echoes = AtomicU64::new(0);
    let held_now = AtomicU64::new(0);
    let peak = AtomicU64::new(0);
    let start = Instant::now();

    let agents_back: Vec<UserAgent> = std::thread::scope(|s| {
        let handles: Vec<_> = agents
            .into_iter()
            .map(|mut agent| {
                let queue = &queue;
                let completed = &completed;
                let failed = &failed;
                let echoes = &echoes;
                let held_now = &held_now;
                let peak = &peak;
                let session_us = Arc::clone(&session_us);
                s.spawn(move || {
                    let mut held: Vec<UserSession> = Vec::new();
                    loop {
                        let next = {
                            #[allow(clippy::unwrap_used)]
                            let mut q = queue.lock().unwrap();
                            q.pop_front()
                        };
                        let Some((idx, at_us)) = next else { break };
                        let target = Duration::from_micros(at_us);
                        let now = start.elapsed();
                        if now < target {
                            std::thread::sleep(target - now);
                        }
                        let addr = routers[idx as usize % routers.len()];
                        match agent.connect_with_retry(addr, &cfg.retry) {
                            Ok(mut sess) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                                let established = start.elapsed();
                                session_us.record(
                                    established
                                        .saturating_sub(target)
                                        .as_micros()
                                        .min(u128::from(u64::MAX))
                                        as u64,
                                );
                                for round in 0..cfg.echo_per_session {
                                    let payload = format!("load-{idx}-{round}");
                                    if sess.echo(payload.as_bytes()).is_ok() {
                                        echoes.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                if cfg.hold_sessions {
                                    held.push(sess);
                                    let cur = held_now.fetch_add(1, Ordering::Relaxed) + 1;
                                    peak.fetch_max(cur, Ordering::Relaxed);
                                } else {
                                    sess.close();
                                }
                            }
                            Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    let n = held.len() as u64;
                    for sess in held {
                        sess.close();
                    }
                    held_now.fetch_sub(n, Ordering::Relaxed);
                    agent
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(agent) => agent,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    let elapsed_ms = start.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;

    let mut telemetry = Snapshot::default();
    let mut conn_rejected = 0u64;
    for a in &agents_back {
        merge_unprefixed(&mut telemetry, &a.telemetry());
        conn_rejected += a.metrics().conn_rejected;
    }
    let hs_total_us = telemetry
        .histograms
        .get("net.hs_total_us")
        .cloned()
        .unwrap_or_default();

    (
        LoadOutcome {
            offered,
            completed: completed.load(Ordering::Relaxed),
            failed: failed.load(Ordering::Relaxed),
            conn_rejected,
            echoes: echoes.load(Ordering::Relaxed),
            peak_concurrent: peak.load(Ordering::Relaxed),
            elapsed_ms,
            hs_total_us,
            session_us: session_us.snapshot(),
            telemetry,
        },
        agents_back,
    )
}
