//! Seeded arrival schedules for the open-loop driver.
//!
//! A schedule is the full list of arrival instants (µs offsets from run
//! start), generated *before* the run from a seed — the defining
//! property of an open-loop harness. The same `(process, rate,
//! duration, seed)` tuple always yields the byte-identical schedule
//! (property-tested in `tests/schedule_props.rs`).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The inter-arrival process shaping a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrivals (a Poisson process) — the standard
    /// model for independent user arrivals; produces natural bursts.
    Poisson,
    /// Fixed spacing at exactly the configured rate — the worst-case
    /// *sustained* load with no recovery gaps.
    Uniform,
}

/// Uniform `f64` in `[0, 1)` from one RNG draw (53 mantissa bits).
#[inline]
fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Builds the arrival schedule: ascending arrival offsets in µs, all
/// strictly below `duration_ms · 1000`.
///
/// # Panics
///
/// `rate_per_sec` must be positive and finite.
pub fn build_schedule(
    process: ArrivalProcess,
    rate_per_sec: f64,
    duration_ms: u64,
    seed: u64,
) -> Vec<u64> {
    assert!(
        rate_per_sec.is_finite() && rate_per_sec > 0.0,
        "rate_per_sec must be positive"
    );
    let end_us = (duration_ms as f64) * 1_000.0;
    let mut out = Vec::new();
    match process {
        ArrivalProcess::Uniform => {
            let period_us = 1_000_000.0 / rate_per_sec;
            // Centre each arrival in its slot so rate edges round evenly.
            let mut t = period_us / 2.0;
            while t < end_us {
                out.push(t as u64);
                t += period_us;
            }
        }
        ArrivalProcess::Poisson => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = 0.0f64;
            loop {
                // Inverse-CDF exponential draw; `1 - u` keeps ln() away
                // from zero.
                let u = unit_f64(&mut rng);
                t += -(1.0 - u).ln() * 1_000_000.0 / rate_per_sec;
                if t >= end_us {
                    break;
                }
                out.push(t as u64);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_hits_rate_exactly() {
        let s = build_schedule(ArrivalProcess::Uniform, 100.0, 2_000, 7);
        assert_eq!(s.len(), 200);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert!(*s.last().unwrap() < 2_000_000);
    }

    #[test]
    fn poisson_is_seed_deterministic_and_near_rate() {
        let a = build_schedule(ArrivalProcess::Poisson, 200.0, 5_000, 99);
        let b = build_schedule(ArrivalProcess::Poisson, 200.0, 5_000, 99);
        assert_eq!(a, b, "same seed, same schedule");
        let c = build_schedule(ArrivalProcess::Poisson, 200.0, 5_000, 100);
        assert_ne!(a, c, "different seed, different schedule");
        // Expected 1000 arrivals; allow ±6σ (σ = √1000 ≈ 32).
        let n = a.len() as f64;
        assert!((n - 1_000.0).abs() < 6.0 * 1_000.0f64.sqrt(), "n={n}");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn empty_when_duration_too_short() {
        assert!(build_schedule(ArrivalProcess::Uniform, 1.0, 0, 1).is_empty());
        assert!(build_schedule(ArrivalProcess::Poisson, 1.0, 0, 1).is_empty());
    }
}
