//! Mesh-router public-key certificates (the paper's `Cert_k`).
//!
//! `Cert_k = { MR_k, RPK_k, ExpT, Sig_NSK }` — subject identifier, router
//! public key, expiration time, and the network operator's ECDSA signature.
//! A serial number is added so certificates can be listed on a CRL.

use core::fmt;

use peace_wire::{Decode, Encode, Reader, Writer};

use crate::{Signature, SigningKey, VerifyingKey};

/// Why certificate validation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertificateError {
    /// The operator signature did not verify.
    BadSignature,
    /// The certificate expired before the supplied time.
    Expired,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::BadSignature => write!(f, "certificate signature invalid"),
            CertificateError::Expired => write!(f, "certificate expired"),
        }
    }
}

impl std::error::Error for CertificateError {}

/// A router certificate signed by the network operator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// Serial number (referenced by the CRL).
    pub serial: u64,
    /// Subject identifier (`MR_k`).
    pub subject: String,
    /// The router's public key (`RPK_k`).
    pub public_key: VerifyingKey,
    /// Expiration time (`ExpT`), in protocol time units (ms).
    pub expires_at: u64,
    /// Operator signature (`Sig_NSK`) over the fields above.
    pub signature: Signature,
}

impl Certificate {
    fn tbs(serial: u64, subject: &str, public_key: &VerifyingKey, expires_at: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("peace-cert-v1");
        w.put_u64(serial);
        w.put_str(subject);
        public_key.encode(&mut w);
        w.put_u64(expires_at);
        w.into_bytes()
    }

    /// Issues a certificate signed by `issuer` (the network operator).
    pub fn issue(
        issuer: &SigningKey,
        serial: u64,
        subject: &str,
        public_key: VerifyingKey,
        expires_at: u64,
    ) -> Self {
        let signature = issuer.sign(&Self::tbs(serial, subject, &public_key, expires_at));
        Self {
            serial,
            subject: subject.to_owned(),
            public_key,
            expires_at,
            signature,
        }
    }

    /// Validates the certificate against the issuer public key at time `now`.
    ///
    /// # Errors
    ///
    /// [`CertificateError::BadSignature`] if the signature fails,
    /// [`CertificateError::Expired`] if `now > expires_at`.
    pub fn validate(&self, issuer: &VerifyingKey, now: u64) -> Result<(), CertificateError> {
        let tbs = Self::tbs(
            self.serial,
            &self.subject,
            &self.public_key,
            self.expires_at,
        );
        if !issuer.verify(&tbs, &self.signature) {
            return Err(CertificateError::BadSignature);
        }
        if now > self.expires_at {
            return Err(CertificateError::Expired);
        }
        Ok(())
    }
}

impl Encode for Certificate {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.serial);
        w.put_str(&self.subject);
        self.public_key.encode(w);
        w.put_u64(self.expires_at);
        self.signature.encode(w);
    }
}

impl Decode for Certificate {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        Ok(Self {
            serial: r.get_u64()?,
            subject: r.get_str()?,
            public_key: VerifyingKey::decode(r)?,
            expires_at: r.get_u64()?,
            signature: Signature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> (SigningKey, SigningKey) {
        let mut rng = StdRng::seed_from_u64(11);
        (SigningKey::random(&mut rng), SigningKey::random(&mut rng))
    }

    #[test]
    fn issue_and_validate() {
        let (ca, router) = keys();
        let cert = Certificate::issue(&ca, 1, "MR-17", *router.verifying_key(), 10_000);
        assert!(cert.validate(ca.verifying_key(), 5_000).is_ok());
    }

    #[test]
    fn expired_certificate_rejected() {
        let (ca, router) = keys();
        let cert = Certificate::issue(&ca, 1, "MR-17", *router.verifying_key(), 10_000);
        assert_eq!(
            cert.validate(ca.verifying_key(), 10_001),
            Err(CertificateError::Expired)
        );
        // boundary: exactly at expiry is still valid
        assert!(cert.validate(ca.verifying_key(), 10_000).is_ok());
    }

    #[test]
    fn forged_certificate_rejected() {
        let (ca, router) = keys();
        let mut cert = Certificate::issue(&ca, 1, "MR-17", *router.verifying_key(), 10_000);
        cert.subject = "MR-99".into(); // tamper after signing
        assert_eq!(
            cert.validate(ca.verifying_key(), 0),
            Err(CertificateError::BadSignature)
        );
    }

    #[test]
    fn wrong_issuer_rejected() {
        let (ca, router) = keys();
        let cert = Certificate::issue(&ca, 1, "MR-17", *router.verifying_key(), 10_000);
        assert_eq!(
            cert.validate(router.verifying_key(), 0),
            Err(CertificateError::BadSignature)
        );
    }

    #[test]
    fn wire_roundtrip() {
        let (ca, router) = keys();
        let cert = Certificate::issue(&ca, 77, "MR-x", *router.verifying_key(), 123);
        let enc = cert.to_wire();
        let back = Certificate::from_wire(&enc).unwrap();
        assert_eq!(back, cert);
        assert!(back.validate(ca.verifying_key(), 0).is_ok());
    }
}
