//! ECDSA-160 for PEACE infrastructure signatures.
//!
//! The paper uses ECDSA-160 for all *non-anonymous* signatures: mesh-router
//! beacons (`Sig_RSK`), router certificates (`Cert_k`), CRL/URL signing by
//! the network operator, and the non-repudiation receipts exchanged during
//! setup. We instantiate it over the same 160-bit prime-order subgroup used
//! by the pairing (group order `q`), which gives exactly the 2×160-bit
//! signature size of ECDSA-160.
//!
//! Nonces are derived deterministically (RFC 6979 style, via HKDF from the
//! secret key and message digest), so signing never needs an RNG and is
//! immune to nonce-reuse failures.
//!
//! # Examples
//!
//! ```
//! use peace_ecdsa::SigningKey;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let sk = SigningKey::random(&mut rng);
//! let sig = sk.sign(b"beacon payload");
//! assert!(sk.verifying_key().verify(b"beacon payload", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cert;

pub use cert::{Certificate, CertificateError};

use core::fmt;

use peace_curve::{generator, AffinePoint};
use peace_field::Fq;
use peace_hash::xof;
use peace_wire::{Decode, Encode, Reader, Writer};
use rand::RngCore;

/// Maps a message to a scalar: `e = XOF("peace-ecdsa-h", msg) mod q`.
fn hash_to_scalar(msg: &[u8]) -> Fq {
    Fq::from_wide_bytes(&xof(b"peace-ecdsa-h", msg, 40))
}

/// Maps a curve x-coordinate to a scalar (the ECDSA `r = x mod q` step).
fn x_to_scalar(p: &AffinePoint) -> Fq {
    Fq::from_wide_bytes(&p.x.to_canonical_bytes())
}

/// An ECDSA-160 signature `(r, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    r: Fq,
    s: Fq,
}

impl Signature {
    /// Encoded length in bytes (two 20-byte scalars).
    pub const ENCODED_LEN: usize = 40;

    /// Canonical 40-byte encoding `r ‖ s`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.r.to_canonical_bytes();
        out.extend_from_slice(&self.s.to_canonical_bytes());
        out
    }

    /// Parses the canonical encoding, rejecting zero components.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let r = Fq::from_canonical_bytes(&bytes[..20])?;
        let s = Fq::from_canonical_bytes(&bytes[20..])?;
        if r.is_zero() || s.is_zero() {
            return None;
        }
        Some(Self { r, s })
    }
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        w.put_fixed(&self.to_bytes());
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        let b = r.get_fixed(Self::ENCODED_LEN)?;
        Self::from_bytes(b).ok_or(peace_wire::WireError::Invalid("ecdsa signature"))
    }
}

/// An ECDSA-160 private key.
#[derive(Clone)]
pub struct SigningKey {
    d: Fq,
    public: VerifyingKey,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigningKey(public: {:?})", self.public)
    }
}

impl SigningKey {
    /// Generates a fresh key pair.
    pub fn random(rng: &mut impl RngCore) -> Self {
        let d = Fq::random_nonzero(rng);
        Self::from_scalar(d)
    }

    /// Builds a key pair from a known scalar (tests, deterministic setups).
    pub fn from_scalar(d: Fq) -> Self {
        assert!(!d.is_zero(), "secret key must be nonzero");
        let public = VerifyingKey {
            point: peace_curve::mul_generator(&d),
        };
        Self { d, public }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.public
    }

    /// Signs `msg` with a deterministic (RFC 6979-style) nonce.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let e = hash_to_scalar(msg);
        let mut attempt: u32 = 0;
        loop {
            // k = XOF(d ‖ e ‖ attempt) mod q — deterministic, secret-keyed.
            let mut seed = self.d.to_canonical_bytes();
            seed.extend_from_slice(&e.to_canonical_bytes());
            seed.extend_from_slice(&attempt.to_be_bytes());
            let k = Fq::from_wide_bytes(&xof(b"peace-ecdsa-k", &seed, 40));
            attempt += 1;
            if k.is_zero() {
                continue;
            }
            let big_r = peace_curve::mul_generator(&k);
            let r = x_to_scalar(&big_r);
            if r.is_zero() {
                continue;
            }
            let k_inv = k.invert().expect("k nonzero");
            let s = k_inv.mul(&e.add(&r.mul(&self.d)));
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
    }
}

/// An ECDSA-160 public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey {
    point: AffinePoint,
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VerifyingKey({:?})", self.point)
    }
}

impl VerifyingKey {
    /// Encoded length (compressed point).
    pub const ENCODED_LEN: usize = 65;

    /// Verifies `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if sig.r.is_zero() || sig.s.is_zero() {
            return false;
        }
        let e = hash_to_scalar(msg);
        let Some(w) = sig.s.invert() else {
            return false;
        };
        let u1 = e.mul(&w);
        let u2 = sig.r.mul(&w);
        // Shamir's trick: one shared doubling chain for u1·G + u2·Q.
        let point = generator().double_mul_scalar(&u1, &self.point, &u2);
        if point.is_identity() {
            return false;
        }
        x_to_scalar(&point) == sig.r
    }

    /// Compressed 65-byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.point.to_compressed()
    }

    /// Parses and validates a compressed public key (on-curve, in-subgroup,
    /// not the identity).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let point = AffinePoint::from_compressed(bytes)?;
        if point.is_identity() || !point.is_in_subgroup() {
            return None;
        }
        Some(Self { point })
    }
}

impl Encode for VerifyingKey {
    fn encode(&self, w: &mut Writer) {
        w.put_fixed(&self.to_bytes());
    }
}

impl Decode for VerifyingKey {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        let b = r.get_fixed(Self::ENCODED_LEN)?;
        Self::from_bytes(b).ok_or(peace_wire::WireError::Invalid("ecdsa public key"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> SigningKey {
        let mut rng = StdRng::seed_from_u64(5);
        SigningKey::random(&mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = key();
        let sig = sk.sign(b"message");
        assert!(sk.verifying_key().verify(b"message", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let sk = key();
        let sig = sk.sign(b"message");
        assert!(!sk.verifying_key().verify(b"other", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let sk = key();
        let mut rng = StdRng::seed_from_u64(6);
        let other = SigningKey::random(&mut rng);
        let sig = sk.sign(b"message");
        assert!(!other.verifying_key().verify(b"message", &sig));
    }

    #[test]
    fn deterministic_signing() {
        let sk = key();
        assert_eq!(sk.sign(b"m"), sk.sign(b"m"));
        assert_ne!(sk.sign(b"m"), sk.sign(b"n"));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let sk = key();
        let sig = sk.sign(b"message");
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), Signature::ENCODED_LEN);
        assert_eq!(Signature::from_bytes(&bytes).unwrap(), sig);
        assert!(Signature::from_bytes(&bytes[1..]).is_none());
        assert!(Signature::from_bytes(&[0u8; 40]).is_none()); // zero r,s
    }

    #[test]
    fn verifying_key_bytes_roundtrip() {
        let sk = key();
        let vk = *sk.verifying_key();
        let bytes = vk.to_bytes();
        assert_eq!(VerifyingKey::from_bytes(&bytes).unwrap(), vk);
        assert!(VerifyingKey::from_bytes(&AffinePoint::IDENTITY.to_compressed()).is_none());
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = key();
        let sig = sk.sign(b"message");
        let mut b = sig.to_bytes();
        b[0] ^= 1;
        if let Some(bad) = Signature::from_bytes(&b) {
            assert!(!sk.verifying_key().verify(b"message", &bad));
        }
    }

    #[test]
    fn signature_size_is_ecdsa_160() {
        // Paper §V.C compares against ECDSA-160 / RSA-1024 sizes.
        let sk = key();
        assert_eq!(sk.sign(b"x").to_bytes().len(), 40);
    }

    #[test]
    fn wire_roundtrip() {
        let sk = key();
        let sig = sk.sign(b"wire");
        let enc = sig.to_wire();
        assert_eq!(Signature::from_wire(&enc).unwrap(), sig);
        let vk = *sk.verifying_key();
        assert_eq!(VerifyingKey::from_wire(&vk.to_wire()).unwrap(), vk);
    }
}
