//! Fixed-width unsigned big integers for the PEACE cryptographic stack.
//!
//! [`Uint<N>`] is an `N`-limb (64-bit limbs, little-endian) unsigned integer
//! with the exact set of operations the field, curve, and signature layers
//! need: carry-propagating add/sub, widening multiplication, shifts, bit
//! access, byte conversions, and reduction of double-width values modulo an
//! odd modulus (used for hash-to-field and setup, not in hot paths).
//!
//! The crate is dependency-free. Montgomery arithmetic lives one layer up in
//! `peace-field`; this crate supplies only plain integer arithmetic.
//!
//! # Examples
//!
//! ```
//! use peace_bigint::Uint;
//!
//! let a = Uint::<4>::from_u64(7);
//! let b = Uint::<4>::from_u64(9);
//! let (sum, carry) = a.overflowing_add(&b);
//! assert_eq!(sum, Uint::from_u64(16));
//! assert!(!carry);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // carry-chain loops read clearest with explicit indices

use core::cmp::Ordering;
use core::fmt;

/// Add with carry: returns `(a + b + carry) mod 2^64` and the new carry.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: returns `(a - b - borrow) mod 2^64` and the new
/// borrow (0 or 1).
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub((b as u128) + (borrow as u128));
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Multiply-accumulate: returns `(acc + a*b + carry) mod 2^64` and the carry.
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (acc as u128) + (a as u128) * (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// A fixed-width unsigned integer with `N` 64-bit limbs, stored
/// little-endian (limb 0 is least significant).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const N: usize> {
    limbs: [u64; N],
}

impl<const N: usize> Uint<N> {
    /// The value zero.
    pub const ZERO: Self = Self { limbs: [0; N] };

    /// The value one.
    pub const ONE: Self = {
        let mut l = [0u64; N];
        l[0] = 1;
        Self { limbs: l }
    };

    /// The maximum representable value (all bits set).
    pub const MAX: Self = Self {
        limbs: [u64::MAX; N],
    };

    /// Number of bits in the representation.
    pub const BITS: u32 = 64 * N as u32;

    /// Constructs from little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; N]) -> Self {
        Self { limbs }
    }

    /// Returns the little-endian limbs.
    #[inline]
    pub const fn as_limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    /// Consumes self, returning the little-endian limbs.
    #[inline]
    pub const fn into_limbs(self) -> [u64; N] {
        self.limbs
    }

    /// Constructs from a single `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        let mut l = [0u64; N];
        l[0] = v;
        Self { limbs: l }
    }

    /// Constructs from a `u128`.
    ///
    /// # Panics
    ///
    /// Panics if `N < 2`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        assert!(N >= 2, "u128 needs at least two limbs");
        let mut l = [0u64; N];
        l[0] = v as u64;
        l[1] = (v >> 64) as u64;
        Self { limbs: l }
    }

    /// Whether the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Whether the value is even.
    #[inline]
    pub const fn is_even(&self) -> bool {
        self.limbs[0] & 1 == 0
    }

    /// Whether the value is odd.
    #[inline]
    pub const fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns bit `i` (0 = least significant). Bits beyond the width are 0.
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        if i >= Self::BITS {
            return false;
        }
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (position of the highest set bit + 1);
    /// zero has 0 bits.
    pub fn bits(&self) -> u32 {
        for i in (0..N).rev() {
            if self.limbs[i] != 0 {
                return 64 * i as u32 + (64 - self.limbs[i].leading_zeros());
            }
        }
        0
    }

    /// `self + rhs`, returning the result and whether a carry occurred.
    #[inline]
    pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        for i in 0..N {
            let (v, c) = adc(self.limbs[i], rhs.limbs[i], carry);
            out[i] = v;
            carry = c;
        }
        (Self { limbs: out }, carry != 0)
    }

    /// `self - rhs`, returning the result and whether a borrow occurred.
    #[inline]
    pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut borrow = 0u64;
        for i in 0..N {
            let (v, b) = sbb(self.limbs[i], rhs.limbs[i], borrow);
            out[i] = v;
            borrow = b;
        }
        (Self { limbs: out }, borrow != 0)
    }

    /// `self + rhs` wrapping on overflow.
    #[inline]
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// `self - rhs` wrapping on underflow.
    #[inline]
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Widening multiplication: returns `(lo, hi)` with `self * rhs = hi·2^(64N) + lo`.
    ///
    /// Allocation-free: the double-width accumulator is split across two
    /// fixed `N`-limb halves (stable Rust cannot spell `[u64; 2*N]`), with
    /// each row's inner loop split at the half boundary so no per-limb
    /// branch survives into the carry chain.
    pub fn mul_wide(&self, rhs: &Self) -> (Self, Self) {
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        for i in 0..N {
            let a = self.limbs[i];
            let mut carry = 0u64;
            for j in 0..N - i {
                let (v, c) = mac(lo[i + j], a, rhs.limbs[j], carry);
                lo[i + j] = v;
                carry = c;
            }
            for j in N - i..N {
                let (v, c) = mac(hi[i + j - N], a, rhs.limbs[j], carry);
                hi[i + j - N] = v;
                carry = c;
            }
            hi[i] = carry;
        }
        (Self { limbs: lo }, Self { limbs: hi })
    }

    /// Widening squaring: returns `(lo, hi)` with `self² = hi·2^(64N) + lo`.
    ///
    /// Computes each off-diagonal product `aᵢ·aⱼ` (i < j) once, doubles the
    /// partial sum with a single-bit shift, then folds in the `N` diagonal
    /// squares — `N(N+1)/2` limb products instead of `mul_wide`'s `N²`.
    pub fn square_wide(&self) -> (Self, Self) {
        #[inline(always)]
        fn get<const N: usize>(lo: &[u64; N], hi: &[u64; N], k: usize) -> u64 {
            if k < N {
                lo[k]
            } else {
                hi[k - N]
            }
        }
        #[inline(always)]
        fn set<const N: usize>(lo: &mut [u64; N], hi: &mut [u64; N], k: usize, v: u64) {
            if k < N {
                lo[k] = v;
            } else {
                hi[k - N] = v;
            }
        }
        let a = &self.limbs;
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        // Off-diagonal half-products into w[2..2N-1]. Like `mul_wide`, each
        // row's inner loop is split at the lo/hi boundary (`k = i + j`
        // crosses N at `j = N − i`) so the hot mac chain carries no per-limb
        // branch. Row `i` assigns its carry at `k = N + i` directly: earlier
        // rows never reach past `N + i − 1`.
        for i in 0..N {
            let ai = a[i];
            let mut carry = 0u64;
            let split = (N - i).max(i + 1);
            for j in i + 1..split {
                let (v, c) = mac(lo[i + j], ai, a[j], carry);
                lo[i + j] = v;
                carry = c;
            }
            for j in split..N {
                let (v, c) = mac(hi[i + j - N], ai, a[j], carry);
                hi[i + j - N] = v;
                carry = c;
            }
            hi[i] = carry;
        }
        // Double the off-diagonal sum (top bit cannot be lost: the sum is
        // strictly below 2^(128N−1)).
        let mut top = 0u64;
        for v in lo.iter_mut().chain(hi.iter_mut()) {
            let w = *v;
            *v = (w << 1) | top;
            top = w >> 63;
        }
        // Fold in the diagonal squares aᵢ² at positions 2i, 2i+1 (a cold
        // N-step pass; the boundary-straddling accessors are fine here).
        let mut carry = 0u64;
        for i in 0..N {
            let (v, c) = mac(get(&lo, &hi, 2 * i), a[i], a[i], carry);
            set(&mut lo, &mut hi, 2 * i, v);
            let (v2, c2) = adc(get(&lo, &hi, 2 * i + 1), c, 0);
            set(&mut lo, &mut hi, 2 * i + 1, v2);
            carry = c2;
        }
        debug_assert_eq!(carry, 0, "square cannot overflow 2N limbs");
        (Self { limbs: lo }, Self { limbs: hi })
    }

    /// Shift left by one bit, discarding the top bit.
    #[inline]
    pub fn shl1(&self) -> Self {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        for i in 0..N {
            out[i] = (self.limbs[i] << 1) | carry;
            carry = self.limbs[i] >> 63;
        }
        Self { limbs: out }
    }

    /// Shift right by one bit.
    #[inline]
    pub fn shr1(&self) -> Self {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        for i in (0..N).rev() {
            out[i] = (self.limbs[i] >> 1) | (carry << 63);
            carry = self.limbs[i] & 1;
        }
        Self { limbs: out }
    }

    /// Width-`w` non-adjacent-form recoding (wNAF).
    ///
    /// Returns signed digits `d`, least-significant first, with
    /// `self = Σ dᵢ·2^i`, every nonzero `dᵢ` odd and `|dᵢ| < 2^(w−1)`, and
    /// at most one nonzero digit in any `w` consecutive positions. Scalar
    /// multiplication consumes this to trade table size (`2^(w−2)` odd
    /// multiples) against add count (≈ `bits/(w+1)` instead of `bits/2`).
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ w ≤ 8` and `self` has at least `w` clear high
    /// bits (the carry from a negative digit must not overflow the width).
    pub fn wnaf(&self, w: u32) -> Vec<i8> {
        assert!((2..=8).contains(&w), "wnaf width out of range");
        assert!(
            self.bits() <= Self::BITS - w,
            "wnaf needs {w} bits of headroom"
        );
        let mask = (1u64 << w) - 1;
        let sign_bound = 1i64 << (w - 1);
        let mut v = *self;
        let mut digits = Vec::with_capacity(self.bits() as usize + 1);
        while !v.is_zero() {
            if v.is_odd() {
                let mut d = (v.limbs[0] & mask) as i64;
                if d >= sign_bound {
                    d -= 1 << w;
                }
                if d > 0 {
                    v = v.wrapping_sub(&Self::from_u64(d as u64));
                } else {
                    v = v.wrapping_add(&Self::from_u64(d.unsigned_abs()));
                }
                digits.push(d as i8);
            } else {
                digits.push(0);
            }
            v = v.shr1();
        }
        digits
    }

    /// Constant-time-style conditional select: returns `b` if `choice` else `a`.
    #[inline]
    pub fn select(a: &Self, b: &Self, choice: bool) -> Self {
        let mask = if choice { u64::MAX } else { 0 };
        let mut out = [0u64; N];
        for i in 0..N {
            out[i] = (a.limbs[i] & !mask) | (b.limbs[i] & mask);
        }
        Self { limbs: out }
    }

    /// Big-endian byte encoding (`8*N` bytes).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * N);
        for i in (0..N).rev() {
            out.extend_from_slice(&self.limbs[i].to_be_bytes());
        }
        out
    }

    /// Parses a big-endian byte string of exactly `8*N` bytes.
    ///
    /// Returns `None` if the length is wrong.
    pub fn from_be_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 8 * N {
            return None;
        }
        let mut limbs = [0u64; N];
        for i in 0..N {
            let start = 8 * (N - 1 - i);
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[start..start + 8]);
            limbs[i] = u64::from_be_bytes(b);
        }
        Some(Self { limbs })
    }

    /// Parses a big-endian byte string of at most `8*N` bytes
    /// (shorter inputs are zero-extended on the left).
    pub fn from_be_bytes_padded(bytes: &[u8]) -> Option<Self> {
        if bytes.len() > 8 * N {
            return None;
        }
        let mut full = vec![0u8; 8 * N];
        full[8 * N - bytes.len()..].copy_from_slice(bytes);
        Self::from_be_bytes(&full)
    }

    /// Reduces a double-width value `hi·2^(64N) + lo` modulo `modulus`.
    ///
    /// Uses simple bitwise long division: slow (O(bits²/64)) but only used in
    /// hash-to-field and setup paths, never per-operation.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn reduce_wide(lo: &Self, hi: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "reduction modulo zero");
        // Remainder accumulator, one limb wider than the modulus to absorb
        // the shifted-in bit before comparison.
        let mut rem = vec![0u64; N + 1];
        let total_bits = 2 * Self::BITS;
        for step in 0..total_bits {
            let bit_index = total_bits - 1 - step;
            let bit = if bit_index >= Self::BITS {
                hi.bit(bit_index - Self::BITS)
            } else {
                lo.bit(bit_index)
            };
            // rem = (rem << 1) | bit
            let mut carry = u64::from(bit);
            for limb in rem.iter_mut() {
                let new_carry = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = new_carry;
            }
            // if rem >= modulus { rem -= modulus }
            let ge = {
                if rem[N] != 0 {
                    true
                } else {
                    let mut ord = Ordering::Equal;
                    for i in (0..N).rev() {
                        if rem[i] != modulus.limbs[i] {
                            ord = rem[i].cmp(&modulus.limbs[i]);
                            break;
                        }
                    }
                    ord != Ordering::Less
                }
            };
            if ge {
                let mut borrow = 0u64;
                for i in 0..N {
                    let (v, b) = sbb(rem[i], modulus.limbs[i], borrow);
                    rem[i] = v;
                    borrow = b;
                }
                let (v, _) = sbb(rem[N], 0, borrow);
                rem[N] = v;
            }
        }
        let mut out = [0u64; N];
        out.copy_from_slice(&rem[..N]);
        Self { limbs: out }
    }

    /// `self mod modulus` (single-width convenience over [`Self::reduce_wide`]).
    pub fn rem(&self, modulus: &Self) -> Self {
        Self::reduce_wide(self, &Self::ZERO, modulus)
    }

    /// Modular addition `(self + rhs) mod modulus`, assuming both inputs are
    /// already reduced.
    pub fn add_mod(&self, rhs: &Self, modulus: &Self) -> Self {
        let (sum, carry) = self.overflowing_add(rhs);
        let (diff, borrow) = sum.overflowing_sub(modulus);
        // If addition carried or sum >= modulus, take the subtracted value.
        if carry || !borrow {
            diff
        } else {
            sum
        }
    }

    /// Modular subtraction `(self - rhs) mod modulus`, assuming both inputs
    /// are already reduced.
    pub fn sub_mod(&self, rhs: &Self, modulus: &Self) -> Self {
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.wrapping_add(modulus)
        } else {
            diff
        }
    }
}

impl<const N: usize> Default for Uint<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> Ord for Uint<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..N).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl<const N: usize> PartialOrd for Uint<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> fmt::Debug for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint(0x")?;
        let mut leading = true;
        for i in (0..N).rev() {
            if leading && self.limbs[i] == 0 && i != 0 {
                continue;
            }
            if leading {
                write!(f, "{:x}", self.limbs[i])?;
                leading = false;
            } else {
                write!(f, "{:016x}", self.limbs[i])?;
            }
        }
        write!(f, ")")
    }
}

impl<const N: usize> fmt::Display for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> fmt::LowerHex for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..N).rev() {
            write!(f, "{:016x}", self.limbs[i])?;
        }
        Ok(())
    }
}

impl<const N: usize> From<u64> for Uint<N> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type U256 = Uint<4>;

    #[test]
    fn zero_one_constants() {
        assert!(U256::ZERO.is_zero());
        assert!(!U256::ONE.is_zero());
        assert!(U256::ZERO.is_even());
        assert!(U256::ONE.is_odd());
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::MAX.bits(), 256);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::from_u128(0xdeadbeef_cafebabe_12345678_9abcdef0);
        let b = U256::from_u128(0x0f0f0f0f_f0f0f0f0_55555555_aaaaaaaa);
        let (s, c) = a.overflowing_add(&b);
        assert!(!c);
        let (d, bo) = s.overflowing_sub(&b);
        assert!(!bo);
        assert_eq!(d, a);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256::from_limbs([u64::MAX, u64::MAX, 0, 0]);
        let (s, c) = a.overflowing_add(&U256::ONE);
        assert!(!c);
        assert_eq!(s, U256::from_limbs([0, 0, 1, 0]));
    }

    #[test]
    fn full_overflow_carry() {
        let (s, c) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(c);
        assert!(s.is_zero());
    }

    #[test]
    fn sub_borrows() {
        let (d, b) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(b);
        assert_eq!(d, U256::MAX);
    }

    #[test]
    fn mul_wide_small() {
        let a = U256::from_u64(0xffff_ffff_ffff_ffff);
        let (lo, hi) = a.mul_wide(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(lo, U256::from_u128((1u128 << 64).wrapping_sub(2) << 64 | 1));
        assert!(hi.is_zero());
    }

    #[test]
    fn mul_wide_max() {
        let (lo, hi) = U256::MAX.mul_wide(&U256::MAX);
        // MAX^2 = 2^512 - 2^257 + 1 -> lo = 1, hi = MAX - 1
        assert_eq!(lo, U256::ONE);
        assert_eq!(hi, U256::MAX.wrapping_sub(&U256::ONE));
    }

    #[test]
    fn square_wide_matches_mul_wide_edges() {
        for v in [
            U256::ZERO,
            U256::ONE,
            U256::MAX,
            U256::from_u64(u64::MAX),
            U256::from_limbs([u64::MAX, u64::MAX, 0, 0]),
            U256::from_limbs([0, 0, 0, u64::MAX]),
        ] {
            assert_eq!(v.square_wide(), v.mul_wide(&v), "{v:?}");
        }
    }

    #[test]
    fn shifts() {
        let a = U256::from_u64(1);
        let mut x = a;
        for _ in 0..200 {
            x = x.shl1();
        }
        assert_eq!(x.bits(), 201);
        for _ in 0..200 {
            x = x.shr1();
        }
        assert_eq!(x, a);
    }

    #[test]
    fn byte_roundtrip() {
        let a = U256::from_limbs([1, 2, 3, 4]);
        let b = a.to_be_bytes();
        assert_eq!(b.len(), 32);
        assert_eq!(U256::from_be_bytes(&b).unwrap(), a);
        assert_eq!(U256::from_be_bytes(&b[1..]), None);
    }

    #[test]
    fn padded_bytes() {
        let a = U256::from_be_bytes_padded(&[0x12, 0x34]).unwrap();
        assert_eq!(a, U256::from_u64(0x1234));
        assert!(U256::from_be_bytes_padded(&[0u8; 33]).is_none());
    }

    #[test]
    fn reduce_wide_matches_u128() {
        let m = U256::from_u64(1_000_000_007);
        let lo = U256::from_u128(123456789012345678901234567890u128);
        let r = U256::reduce_wide(&lo, &U256::ZERO, &m);
        assert_eq!(
            r,
            U256::from_u64((123456789012345678901234567890u128 % 1_000_000_007) as u64)
        );
    }

    #[test]
    fn reduce_wide_hi_part() {
        // value = 2^256 mod 97: 2^256 = (2^48)^5 * 2^16; easier: compute via pow mod
        let m = U256::from_u64(97);
        let r = U256::reduce_wide(&U256::ZERO, &U256::ONE, &m);
        // 2^256 mod 97 computed independently
        let mut v: u64 = 1;
        for _ in 0..256 {
            v = (v * 2) % 97;
        }
        assert_eq!(r, U256::from_u64(v));
    }

    #[test]
    fn add_mod_wraps() {
        let m = U256::from_u64(1000);
        let a = U256::from_u64(900);
        let b = U256::from_u64(300);
        assert_eq!(a.add_mod(&b, &m), U256::from_u64(200));
        assert_eq!(a.sub_mod(&b, &m), U256::from_u64(600));
        assert_eq!(b.sub_mod(&a, &m), U256::from_u64(400));
    }

    #[test]
    fn add_mod_near_full_width() {
        // modulus with top bit set, operands just below it
        let m = U256::from_limbs([3, 0, 0, 1u64 << 63]);
        let a = m.wrapping_sub(&U256::ONE);
        let s = a.add_mod(&a, &m);
        // (m-1)+(m-1) mod m = m-2
        assert_eq!(s, m.wrapping_sub(&U256::from_u64(2)));
    }

    #[test]
    fn ordering() {
        let a = U256::from_limbs([5, 0, 0, 1]);
        let b = U256::from_limbs([9, 9, 9, 0]);
        assert!(a > b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let a = U256::from_limbs([0, 1, 0, 0]);
        assert!(a.bit(64));
        assert!(!a.bit(63));
        assert!(!a.bit(65));
        assert!(!a.bit(10_000));
    }

    #[test]
    fn select_behaves() {
        let a = U256::from_u64(1);
        let b = U256::from_u64(2);
        assert_eq!(U256::select(&a, &b, false), a);
        assert_eq!(U256::select(&a, &b, true), b);
    }

    // Reference school-book multiplication over 32-bit digits, used to
    // cross-check mul_wide.
    fn reference_mul(a: &U256, b: &U256) -> Vec<u32> {
        let to_digits = |u: &U256| -> Vec<u32> {
            u.as_limbs()
                .iter()
                .flat_map(|&l| [l as u32, (l >> 32) as u32])
                .collect()
        };
        let (da, db) = (to_digits(a), to_digits(b));
        let mut out = vec![0u32; da.len() + db.len()];
        for (i, &x) in da.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &y) in db.iter().enumerate() {
                let t = out[i + j] as u64 + (x as u64) * (y as u64) + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            out[i + db.len()] = carry as u32;
        }
        out
    }

    fn digits_of(lo: &U256, hi: &U256) -> Vec<u32> {
        lo.as_limbs()
            .iter()
            .chain(hi.as_limbs().iter())
            .flat_map(|&l| [l as u32, (l >> 32) as u32])
            .collect()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn prop_mul_wide_matches_reference(
            a in proptest::array::uniform4(proptest::prelude::any::<u64>()),
            b in proptest::array::uniform4(proptest::prelude::any::<u64>()),
        ) {
            let a = U256::from_limbs(a);
            let b = U256::from_limbs(b);
            let (lo, hi) = a.mul_wide(&b);
            proptest::prop_assert_eq!(digits_of(&lo, &hi), reference_mul(&a, &b));
            // commutativity
            let (lo2, hi2) = b.mul_wide(&a);
            proptest::prop_assert_eq!(lo, lo2);
            proptest::prop_assert_eq!(hi, hi2);
        }

        #[test]
        fn prop_square_wide_matches_mul_wide(
            a in proptest::array::uniform4(proptest::prelude::any::<u64>()),
        ) {
            let a = U256::from_limbs(a);
            let (lo, hi) = a.square_wide();
            let (lo2, hi2) = a.mul_wide(&a);
            proptest::prop_assert_eq!(lo, lo2);
            proptest::prop_assert_eq!(hi, hi2);
        }

        #[test]
        fn prop_add_sub_inverse(
            a in proptest::array::uniform4(proptest::prelude::any::<u64>()),
            b in proptest::array::uniform4(proptest::prelude::any::<u64>()),
        ) {
            let a = U256::from_limbs(a);
            let b = U256::from_limbs(b);
            proptest::prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
            proptest::prop_assert_eq!(a.wrapping_sub(&b).wrapping_add(&b), a);
        }

        #[test]
        fn prop_reduce_wide_bounds_and_consistency(
            lo in proptest::array::uniform4(proptest::prelude::any::<u64>()),
            hi in proptest::array::uniform4(proptest::prelude::any::<u64>()),
            m in 2u64..u64::MAX,
        ) {
            let lo = U256::from_limbs(lo);
            let hi = U256::from_limbs(hi);
            let modulus = U256::from_u64(m);
            let r = U256::reduce_wide(&lo, &hi, &modulus);
            proptest::prop_assert!(r < modulus);
            // adding a multiple of the modulus to lo (when it fits) keeps
            // the residue: (lo + m) mod m == lo mod m
            let (lo2, carry) = lo.overflowing_add(&modulus);
            if !carry {
                let r2 = U256::reduce_wide(&lo2, &hi, &modulus);
                proptest::prop_assert_eq!(r, r2);
            }
        }

        #[test]
        fn prop_byte_roundtrip(a in proptest::array::uniform4(proptest::prelude::any::<u64>())) {
            let a = U256::from_limbs(a);
            proptest::prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()).unwrap(), a);
        }

        #[test]
        fn prop_bits_shift_consistency(a in proptest::array::uniform4(proptest::prelude::any::<u64>())) {
            let a = U256::from_limbs(a);
            let bits = a.bits();
            if bits > 0 {
                proptest::prop_assert!(a.bit(bits - 1));
            }
            proptest::prop_assert!(!a.bit(bits));
            proptest::prop_assert_eq!(a.shl1().shr1().bit(255), false);
        }
    }

    fn wnaf_reconstruct(digits: &[i8]) -> U256 {
        // Σ dᵢ·2^i, folded MSB-down: acc = 2·acc + d.
        let mut acc = U256::ZERO;
        for &d in digits.iter().rev() {
            acc = acc.shl1();
            if d > 0 {
                acc = acc.wrapping_add(&U256::from_u64(d as u64));
            } else if d < 0 {
                acc = acc.wrapping_sub(&U256::from_u64((-(d as i64)) as u64));
            }
        }
        acc
    }

    #[test]
    fn wnaf_digit_invariants() {
        let a = U256::from_limbs([
            0x243F6A8885A308D3,
            0x13198A2E03707344,
            0xA4093822299F31D0,
            0,
        ]);
        for w in 2..=8u32 {
            let digits = a.wnaf(w);
            assert_eq!(wnaf_reconstruct(&digits), a, "width {w}");
            let bound = 1i16 << (w - 1);
            for (i, &d) in digits.iter().enumerate() {
                if d != 0 {
                    assert!(d as i16 % 2 != 0, "digit {i} even at width {w}");
                    assert!((d as i16).abs() < bound, "digit {i} too big at width {w}");
                    // Non-adjacency: next w−1 digits are zero.
                    for &z in digits.iter().skip(i + 1).take(w as usize - 1) {
                        assert_eq!(z, 0, "adjacent nonzero near {i} at width {w}");
                    }
                }
            }
        }
    }

    #[test]
    fn wnaf_edge_values() {
        assert!(U256::ZERO.wnaf(4).is_empty());
        assert_eq!(U256::ONE.wnaf(4), vec![1]);
        // 2^200 has exactly one digit, at position 200.
        let mut v = U256::ONE;
        for _ in 0..200 {
            v = v.shl1();
        }
        let digits = v.wnaf(5);
        assert_eq!(digits.len(), 201);
        assert_eq!(digits[200], 1);
        assert!(digits[..200].iter().all(|&d| d == 0));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn prop_wnaf_roundtrip(
            a in proptest::array::uniform4(proptest::prelude::any::<u64>()),
        ) {
            // Clear the top byte to leave the required headroom.
            let mut limbs = a;
            limbs[3] &= 0x00FF_FFFF_FFFF_FFFF;
            let a = U256::from_limbs(limbs);
            for w in [2u32, 4, 5] {
                proptest::prop_assert_eq!(wnaf_reconstruct(&a.wnaf(w)), a);
            }
        }
    }

    #[test]
    fn debug_not_empty() {
        assert!(!format!("{:?}", U256::ZERO).is_empty());
        assert_eq!(format!("{:?}", U256::from_u64(0xab)), "Uint(0xab)");
    }
}
