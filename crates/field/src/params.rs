#![allow(missing_docs)] // generated constants documented at module level
//! Generated pairing-group parameters.
//!
//! Produced deterministically by `tools/genparams.py` (seed 20080605).
//! Curve: `y² = x³ + x` over the 512-bit prime `p = c·q − 1` with
//! `p ≡ 3 (mod 4)`; the curve is supersingular with `#E(F_p) = p + 1 = c·q`,
//! embedding degree 2, and a 160-bit prime-order subgroup of order `q`.

pub const P_LIMBS: [u64; 8] = [
    0xf5b799a340e3d293,
    0xaddcf6a6c50b9a21,
    0x000002016583da26,
    0x0000000000000000,
    0x0000000000000000,
    0x0000000000000000,
    0x0000000000000000,
    0x8000000000000000,
];
pub const P_R: [u64; 8] = [
    0x0a48665cbf1c2d6d,
    0x522309593af465de,
    0xfffffdfe9a7c25d9,
    0xffffffffffffffff,
    0xffffffffffffffff,
    0xffffffffffffffff,
    0xffffffffffffffff,
    0x7fffffffffffffff,
];
pub const P_R2: [u64; 8] = [
    0xc1ba44ea779e01a4,
    0xeaf318daa21a2159,
    0x0bb90abf891f8a74,
    0x99a8cb27641bee5c,
    0x0ac674414902e468,
    0x0000000000101660,
    0x0000000000000000,
    0x0000000000000000,
];
pub const P_INV: u64 = 0xff2ef8042401e465;
pub const P_SQRT_EXP: [u64; 8] = [
    0x7d6de668d038f4a5,
    0xab773da9b142e688,
    0x000000805960f689,
    0x0000000000000000,
    0x0000000000000000,
    0x0000000000000000,
    0x0000000000000000,
    0x2000000000000000,
];
pub const Q_LIMBS: [u64; 3] = [0xa2e3453c0e304cab, 0xb290685c339a9f83, 0x00000000d68c3cdc];
pub const Q_R: [u64; 3] = [0x131368dd09abc747, 0x8a809595244d3d8e, 0x0000000096128673];
pub const Q_R2: [u64; 3] = [0x1dc4d627b0f96f7b, 0x6a7434388fa8e6a8, 0x000000008b09a301];
pub const Q_INV: u64 = 0x882e0eafdbc6b1fd;
pub const COFACTOR: [u64; 6] = [
    0x73b32945dfc88fbc,
    0xd2f34b0aedb986d0,
    0x8cb3a47ae75c9bc7,
    0xe1bc30bc09660e38,
    0xd988a1c1e9c72704,
    0x0000000098bb0415,
];
pub const GEN_X: [u64; 8] = [
    0x542445160bbd34f8,
    0xe351f73b9271a8f8,
    0x5eac1c7b6d3d2bd6,
    0xd61e1244de3d1463,
    0xcbba23d92abf1e9c,
    0x85d3a9ddf5a82db5,
    0x78cee08b13f9d5c6,
    0x13be15b78987e0ee,
];
pub const GEN_Y: [u64; 8] = [
    0xb9876cd3510d646e,
    0x073aedb6bf93ae42,
    0x8cc1f4f95d69c648,
    0xe69f1e6e0458ef2b,
    0xeb44f17da44f1b8c,
    0xc31e00df4c768d8a,
    0x046e563c351ac3cf,
    0x02e89928f016b757,
];
pub const GEN2_X: [u64; 8] = [
    0x3d7222efe76d5f64,
    0x6e8578aae21b1405,
    0xe5edb4043e9bd111,
    0x5c685fc5a49fc05e,
    0xc2a0de15607997e2,
    0x05f4c94ba5a226b9,
    0xa24133ab4e3f1efa,
    0x29fdf8c0837be7ac,
];
pub const GEN2_Y: [u64; 8] = [
    0x635100d7df7b00aa,
    0xc5254af298616768,
    0xcd348877f9ae9277,
    0x59cf981982602cac,
    0x1cd7a03eb5391e5b,
    0x2fb643440033bb67,
    0x0bca889c13deef0c,
    0x45914a6a9b6f955f,
];
pub const GEN5_X: [u64; 8] = [
    0xa85474e1b2899dc1,
    0xd51ba46d104baeb9,
    0xfe937b6b8bf58081,
    0x308f1903c426ce9c,
    0x5fffac1ca33a9821,
    0xb3511023021f8008,
    0xe8afec15d423df04,
    0x5a005de819711588,
];
pub const GEN5_Y: [u64; 8] = [
    0xb2fbab3608434420,
    0xefa3e4c4fd5aee7b,
    0xe97b4e4b277b4bcd,
    0x440646ce791d2c53,
    0x341819bbb3547de7,
    0x42ac5fba75ee0fe5,
    0xe45e1f6e06d8a537,
    0x0c22c517eb61646d,
];

/// Decimal rendering of `p` (for documentation/tests).
pub const P_DECIMAL: &str = "6703903964971298549787012499102923063739682910296196688861780721860882015036773488400937149083451713845766258981662893006037005532599866949012678347313811";
/// Decimal rendering of `q`.
pub const Q_DECIMAL: &str = "1224851431120724964319872984786392394130193927339";
