//! The quadratic extension `F_p² = F_p[i] / (i² + 1)`.
//!
//! Since `p ≡ 3 (mod 4)`, `−1` is a non-residue and `i² = −1` defines a
//! field. Elements are `c0 + c1·i`. This is the target field of the Tate
//! pairing (embedding degree 2).

use core::fmt;

use peace_bigint::Uint;
use rand::RngCore;

use crate::{base_modulus, Fp};

/// A double-width (16-limb) accumulator holding an unreduced product sum,
/// split across two 8-limb halves.
type Wide = (Uint<8>, Uint<8>);

/// `a − b` over double-width accumulators, with `p·2^512` (≡ 0 mod p) added
/// back on borrow.
///
/// **Invariant:** both inputs are below `p·R` (`R = 2^512`) and the true
/// difference is above `−p²`. Since `p·R ≥ p²`, a single conditional
/// addition of `p·R` — `p` folded into the high half, wrapping mod `2^1024`
/// exactly cancels the borrow — restores a representative in `[0, p·R)`,
/// which is the contract of the wide Montgomery reduction.
#[inline]
fn wide_sub(a: &Wide, b: &Wide) -> Wide {
    let (lo, borrow_lo) = a.0.overflowing_sub(&b.0);
    let (hi, b1) = a.1.overflowing_sub(&b.1);
    let (hi, b2) = if borrow_lo {
        hi.overflowing_sub(&Uint::ONE)
    } else {
        (hi, false)
    };
    if b1 || b2 {
        (lo, hi.wrapping_add(&base_modulus()))
    } else {
        (lo, hi)
    }
}

/// An element `c0 + c1·i` of `F_p²`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp2 {
    /// Real coefficient.
    pub c0: Fp,
    /// Imaginary coefficient (of `i`).
    pub c1: Fp,
}

impl Fp2 {
    /// The additive identity.
    pub const ZERO: Self = Self {
        c0: Fp::ZERO,
        c1: Fp::ZERO,
    };

    /// The multiplicative identity.
    pub const ONE: Self = Self {
        c0: Fp::ONE,
        c1: Fp::ZERO,
    };

    /// Constructs `c0 + c1·i`.
    pub const fn new(c0: Fp, c1: Fp) -> Self {
        Self { c0, c1 }
    }

    /// Embeds a base-field element.
    pub const fn from_base(c0: Fp) -> Self {
        Self { c0, c1: Fp::ZERO }
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Whether this lies in the base field (imaginary part zero).
    pub fn is_in_base_field(&self) -> bool {
        self.c1.is_zero()
    }

    /// Addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Self {
            c0: self.c0.add(&rhs.c0),
            c1: self.c1.add(&rhs.c1),
        }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        Self {
            c0: self.c0.sub(&rhs.c0),
            c1: self.c1.sub(&rhs.c1),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            c0: self.c0.neg(),
            c1: self.c1.neg(),
        }
    }

    /// Multiplication: Karatsuba over *wide* (double-width) products with
    /// lazy reduction — three widening multiplies and only **two** Montgomery
    /// reductions, instead of three full CIOS passes.
    ///
    /// With `i² = −1`:
    ///
    /// ```text
    /// c0 = a0·b0 − a1·b1
    /// c1 = (a0+a1)·(b0+b1) − a0·b0 − a1·b1
    /// ```
    ///
    /// The subtractions run on the unreduced 16-limb accumulators;
    /// negative intermediates are fixed by conditionally adding `p·2^512`
    /// (see [`wide_sub`]), keeping every accumulator below `p·R` — the
    /// contract of the wide reduction, which then needs a single final
    /// conditional subtraction.
    pub fn mul(&self, rhs: &Self) -> Self {
        let v00 = self.c0.mont_repr().mul_wide(rhs.c0.mont_repr());
        let v11 = self.c1.mont_repr().mul_wide(rhs.c1.mont_repr());
        // Reduced sums (< p) keep the cross product below p².
        let s = self.c0.add(&self.c1);
        let t = rhs.c0.add(&rhs.c1);
        let v01 = s.mont_repr().mul_wide(t.mont_repr());
        let r0 = wide_sub(&v00, &v11);
        let r1 = wide_sub(&wide_sub(&v01, &v00), &v11);
        Self {
            c0: Fp::from_mont(Fp::mont_reduce_wide(&r0.0, &r0.1)),
            c1: Fp::from_mont(Fp::mont_reduce_wide(&r1.0, &r1.1)),
        }
    }

    /// Schoolbook reference multiplication (three full CIOS multiplies) —
    /// the oracle for the lazy-reduction equivalence proptests; not on the
    /// hot path.
    #[doc(hidden)]
    pub fn mul_schoolbook(&self, rhs: &Self) -> Self {
        let aa = self.c0.mul(&rhs.c0);
        let bb = self.c1.mul(&rhs.c1);
        let sum = self.c0.add(&self.c1).mul(&rhs.c0.add(&rhs.c1));
        Self {
            c0: aa.sub(&bb),
            c1: sum.sub(&aa).sub(&bb),
        }
    }

    /// Squaring: complex squaring over wide products.
    ///
    /// `(a + bi)² = (a+b)(a−b) + 2ab·i` — both products are of reduced
    /// operands (< p²), so each reduces directly; `c1` doubles *after*
    /// reduction because `2ab` can reach `2p²`, which may exceed the `p·R`
    /// reduction bound for this near-`2^511` modulus.
    pub fn square(&self) -> Self {
        let a = self.c0;
        let b = self.c1;
        let v0 = a.add(&b).mont_repr().mul_wide(a.sub(&b).mont_repr());
        let v1 = a.mont_repr().mul_wide(b.mont_repr());
        Self {
            c0: Fp::from_mont(Fp::mont_reduce_wide(&v0.0, &v0.1)),
            c1: Fp::from_mont(Fp::mont_reduce_wide(&v1.0, &v1.1)).double(),
        }
    }

    /// Schoolbook reference squaring (two full CIOS multiplies) — oracle
    /// for the equivalence proptests.
    #[doc(hidden)]
    pub fn square_schoolbook(&self) -> Self {
        let a = self.c0;
        let b = self.c1;
        // (a + bi)² = (a+b)(a−b) + 2ab·i
        Self {
            c0: a.add(&b).mul(&a.sub(&b)),
            c1: a.mul(&b).double(),
        }
    }

    /// Complex conjugate `c0 − c1·i`; equals the Frobenius map `x ↦ x^p`.
    pub fn conjugate(&self) -> Self {
        Self {
            c0: self.c0,
            c1: self.c1.neg(),
        }
    }

    /// The field norm `c0² + c1² ∈ F_p`.
    pub fn norm(&self) -> Fp {
        self.c0.square().add(&self.c1.square())
    }

    /// Whether the norm is 1, i.e. the element lies in the cyclotomic
    /// subgroup `μ_{p+1} ⊂ F_p²*`. For such elements the inverse is the
    /// conjugate, which makes signed-digit exponentiation essentially free
    /// of inversions. Every reduced-pairing output is unitary.
    pub fn is_unitary(&self) -> bool {
        self.norm() == Fp::ONE
    }

    /// Multiplicative inverse. Returns `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        let norm_inv = self.norm().invert()?;
        Some(Self {
            c0: self.c0.mul(&norm_inv),
            c1: self.c1.neg().mul(&norm_inv),
        })
    }

    /// Exponentiation by a `Uint` of any width.
    pub fn pow<const M: usize>(&self, exp: &Uint<M>) -> Self {
        self.pow_limbs(exp.as_limbs())
    }

    /// Exponentiation by a little-endian limb slice.
    pub fn pow_limbs(&self, exp: &[u64]) -> Self {
        let mut top = None;
        for (i, &l) in exp.iter().enumerate().rev() {
            if l != 0 {
                top = Some(64 * i as u32 + 63 - l.leading_zeros());
                break;
            }
        }
        let Some(top) = top else { return Self::ONE };
        let mut acc = Self::ONE;
        for i in (0..=top).rev() {
            acc = acc.square();
            if (exp[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Exponentiation of a *unitary* element by a precomputed width-5 wNAF
    /// digit schedule (LSB first, as produced by [`Uint::wnaf`]).
    ///
    /// Negative digits are handled by multiplying with the conjugate of the
    /// tabulated odd power, so the signed-digit recoding costs no field
    /// inversions. With density `1/(w+1)` this does ~`bits/6`
    /// multiplications versus `bits/2` for the binary ladder.
    ///
    /// The caller must guarantee `self.is_unitary()`; the result is
    /// incorrect otherwise (debug builds assert).
    pub fn pow_wnaf_unitary(&self, digits: &[i8]) -> Self {
        debug_assert!(self.is_unitary(), "pow_wnaf_unitary needs norm 1");
        // Odd powers x¹, x³, …, x¹⁵ (indexed by d >> 1).
        let x2 = self.square();
        let mut table = [*self; 8];
        for i in 1..8 {
            table[i] = table[i - 1].mul(&x2);
        }
        let mut acc = Self::ONE;
        for &d in digits.iter().rev() {
            acc = acc.square();
            if d > 0 {
                acc = acc.mul(&table[(d >> 1) as usize]);
            } else if d < 0 {
                acc = acc.mul(&table[((-d) >> 1) as usize].conjugate());
            }
        }
        acc
    }

    /// Exponentiation of a unitary element by an arbitrary exponent,
    /// choosing wNAF when the exponent has recoding headroom and falling
    /// back to the binary ladder otherwise.
    pub fn pow_unitary<const M: usize>(&self, exp: &Uint<M>) -> Self {
        const W: u32 = 5;
        if self.is_unitary() && exp.bits() + W <= Uint::<M>::BITS {
            self.pow_wnaf_unitary(&exp.wnaf(W))
        } else {
            self.pow(exp)
        }
    }

    /// Uniformly random element.
    pub fn random(rng: &mut impl RngCore) -> Self {
        Self {
            c0: Fp::random(rng),
            c1: Fp::random(rng),
        }
    }

    /// Canonical encoding: `c0 || c1`, each 64 bytes (128 bytes total).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.c0.to_canonical_bytes();
        out.extend_from_slice(&self.c1.to_canonical_bytes());
        out
    }

    /// Parses the canonical 128-byte encoding.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 128 {
            return None;
        }
        Some(Self {
            c0: Fp::from_canonical_bytes(&bytes[..64])?,
            c1: Fp::from_canonical_bytes(&bytes[64..])?,
        })
    }
}

impl fmt::Debug for Fp2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp2({:?} + {:?}·i)", self.c0, self.c1)
    }
}

impl fmt::Display for Fp2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl core::ops::Add for Fp2 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp2::add(&self, &rhs)
    }
}
impl core::ops::Sub for Fp2 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp2::sub(&self, &rhs)
    }
}
impl core::ops::Mul for Fp2 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fp2::mul(&self, &rhs)
    }
}
impl core::ops::Neg for Fp2 {
    type Output = Self;
    fn neg(self) -> Self {
        Fp2::neg(&self)
    }
}
