//! Prime-field arithmetic for the PEACE pairing group.
//!
//! Three fields are exposed:
//!
//! * [`Fp`] — the 512-bit base field of the supersingular curve
//!   `E: y² = x³ + x` (with `p ≡ 3 (mod 4)`, `p + 1 = c·q`).
//! * [`Fq`] — the 160-bit scalar field (the order of the pairing subgroup);
//!   this is the paper's `ℤ_p` exponent ring.
//! * [`Fp2`] — the quadratic extension, target field of the Tate pairing.
//!
//! All arithmetic is Montgomery-form with CIOS multiplication, built on
//! [`peace_bigint::Uint`]. Parameters are generated deterministically by
//! `tools/genparams.py` and committed in [`params`].
//!
//! # Examples
//!
//! ```
//! use peace_field::Fq;
//!
//! let a = Fq::from_u64(42);
//! let inv = a.invert().expect("nonzero");
//! assert_eq!(a.mul(&inv), Fq::ONE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod params;

mod fp2;
mod monty;

pub use fp2::Fp2;
pub use monty::{Fe, FieldParams};

use peace_bigint::Uint;

/// Marker type carrying the base-field (`p`) parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PMod;

impl FieldParams<8> for PMod {
    const MODULUS: Uint<8> = Uint::from_limbs(params::P_LIMBS);
    const R: Uint<8> = Uint::from_limbs(params::P_R);
    const R2: Uint<8> = Uint::from_limbs(params::P_R2);
    const INV: u64 = params::P_INV;
    const NUM_BITS: u32 = 512;
    const NUM_BYTES: usize = 64;
    const NAME: &'static str = "Fp";
}

/// Marker type carrying the scalar-field (`q`) parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QMod;

impl FieldParams<3> for QMod {
    const MODULUS: Uint<3> = Uint::from_limbs(params::Q_LIMBS);
    const R: Uint<3> = Uint::from_limbs(params::Q_R);
    const R2: Uint<3> = Uint::from_limbs(params::Q_R2);
    const INV: u64 = params::Q_INV;
    const NUM_BITS: u32 = 160;
    const NUM_BYTES: usize = 20;
    const NAME: &'static str = "Fq";
}

/// The 512-bit base field of the pairing curve.
pub type Fp = Fe<PMod, 8>;

/// The 160-bit scalar field (order of the pairing subgroup). This plays the
/// role of the paper's exponent ring `ℤ_p`.
pub type Fq = Fe<QMod, 3>;

/// The subgroup order `q` as an integer.
pub const fn subgroup_order() -> Uint<3> {
    Uint::from_limbs(params::Q_LIMBS)
}

/// The base-field modulus `p` as an integer.
pub const fn base_modulus() -> Uint<8> {
    Uint::from_limbs(params::P_LIMBS)
}

/// The cofactor `c = (p + 1) / q` as an integer (352 bits).
pub const fn cofactor() -> Uint<6> {
    Uint::from_limbs(params::COFACTOR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn fp_one_times_one() {
        assert_eq!(Fp::ONE.mul(&Fp::ONE), Fp::ONE);
        assert_eq!(Fp::ONE.to_uint(), Uint::ONE);
    }

    #[test]
    fn fp_add_neg_is_zero() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            assert!(a.add(&a.neg()).is_zero());
        }
    }

    #[test]
    fn fp_mul_inverse() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp::random_nonzero(&mut r);
            assert_eq!(a.mul(&a.invert().unwrap()), Fp::ONE);
        }
        assert!(Fp::ZERO.invert().is_none());
    }

    #[test]
    fn fq_mul_inverse() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fq::random_nonzero(&mut r);
            assert_eq!(a.mul(&a.invert().unwrap()), Fq::ONE);
        }
        assert!(Fq::ZERO.invert().is_none());
    }

    #[test]
    fn fp_sqrt_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg());
        }
    }

    #[test]
    fn fp_nonresidue_has_no_root() {
        // -1 is a non-residue since p ≡ 3 (mod 4)
        let minus_one = Fp::ONE.neg();
        assert_eq!(minus_one.legendre(), -1);
        assert!(minus_one.sqrt().is_none());
    }

    #[test]
    fn fp_legendre_of_squares() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp::random_nonzero(&mut r);
            assert_eq!(a.square().legendre(), 1);
        }
        assert_eq!(Fp::ZERO.legendre(), 0);
    }

    #[test]
    fn fq_fermat() {
        // a^(q-1) = 1
        let mut r = rng();
        let a = Fq::random_nonzero(&mut r);
        let qm1 = subgroup_order().wrapping_sub(&Uint::ONE);
        assert_eq!(a.pow(&qm1), Fq::ONE);
    }

    #[test]
    fn fp_fermat() {
        let mut r = rng();
        let a = Fp::random_nonzero(&mut r);
        let pm1 = base_modulus().wrapping_sub(&Uint::ONE);
        assert_eq!(a.pow(&pm1), Fp::ONE);
    }

    #[test]
    fn canonical_bytes_roundtrip() {
        let mut r = rng();
        let a = Fp::random(&mut r);
        let b = a.to_canonical_bytes();
        assert_eq!(b.len(), 64);
        assert_eq!(Fp::from_canonical_bytes(&b).unwrap(), a);

        let x = Fq::random(&mut r);
        let xb = x.to_canonical_bytes();
        assert_eq!(xb.len(), 20);
        assert_eq!(Fq::from_canonical_bytes(&xb).unwrap(), x);
    }

    #[test]
    fn canonical_bytes_reject_modulus() {
        let m = base_modulus().to_be_bytes();
        assert!(Fp::from_canonical_bytes(&m).is_none());
        let q = subgroup_order().to_be_bytes();
        assert!(Fq::from_canonical_bytes(&q[4..]).is_none());
        assert!(Fq::from_canonical_bytes(&[0u8; 19]).is_none());
    }

    #[test]
    fn from_wide_bytes_reduces() {
        let wide = [0xFFu8; 40];
        let a = Fq::from_wide_bytes(&wide);
        // Must equal the value mod q computed through Uint reduction.
        let mut full = [0u8; 48];
        full[8..].copy_from_slice(&wide);
        let hi = Uint::<3>::from_be_bytes(&full[..24]).unwrap();
        let lo = Uint::<3>::from_be_bytes(&full[24..]).unwrap();
        let expect = Fq::from_uint(&Uint::reduce_wide(&lo, &hi, &subgroup_order()));
        assert_eq!(a, expect);
    }

    #[test]
    fn fp2_mul_commutes_and_inverts() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let b = Fp2::random(&mut r);
        assert_eq!(a.mul(&b), b.mul(&a));
        let ai = a.invert().unwrap();
        assert_eq!(a.mul(&ai), Fp2::ONE);
        assert!(Fp2::ZERO.invert().is_none());
    }

    #[test]
    fn fp2_square_matches_mul() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp2::random(&mut r);
            assert_eq!(a.square(), a.mul(&a));
        }
    }

    #[test]
    fn fp2_i_squared_is_minus_one() {
        let i = Fp2::new(Fp::ZERO, Fp::ONE);
        assert_eq!(i.square(), Fp2::from_base(Fp::ONE.neg()));
    }

    #[test]
    fn fp2_conjugate_is_frobenius() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let frob = a.pow(&base_modulus());
        assert_eq!(frob, a.conjugate());
    }

    #[test]
    fn fp2_norm_multiplicative() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let b = Fp2::random(&mut r);
        assert_eq!(a.mul(&b).norm(), a.norm().mul(&b.norm()));
    }

    #[test]
    fn fp2_bytes_roundtrip() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), 128);
        assert_eq!(Fp2::from_bytes(&bytes).unwrap(), a);
        assert!(Fp2::from_bytes(&bytes[1..]).is_none());
    }

    #[test]
    fn p_plus_one_is_cofactor_times_q() {
        // sanity-check the generated parameters: c * q == p + 1
        let c = cofactor();
        let q = subgroup_order();
        // widen both to 8 limbs and multiply
        let mut cl = [0u64; 8];
        cl[..6].copy_from_slice(c.as_limbs());
        let mut ql = [0u64; 8];
        ql[..3].copy_from_slice(q.as_limbs());
        let (lo, hi) = Uint::<8>::from_limbs(cl).mul_wide(&Uint::from_limbs(ql));
        assert!(hi.is_zero());
        assert_eq!(lo, base_modulus().wrapping_add(&Uint::ONE));
    }

    #[test]
    fn p_is_3_mod_4() {
        assert_eq!(base_modulus().as_limbs()[0] & 3, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_fq_ring_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let (a, b, c) = (Fq::from_u64(a), Fq::from_u64(b), Fq::from_u64(c));
            prop_assert_eq!(a.add(&b), b.add(&a));
            prop_assert_eq!(a.mul(&b), b.mul(&a));
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }

        #[test]
        fn prop_fp_sub_add_inverse(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (Fp::from_u64(a), Fp::from_u64(b));
            prop_assert_eq!(a.sub(&b).add(&b), a);
        }

        #[test]
        fn prop_sparse_cios_matches_generic_reference(
            a in proptest::array::uniform8(any::<u64>()),
            b in proptest::array::uniform8(any::<u64>()),
        ) {
            // Random full 512-bit inputs, reduced into the field; the hot
            // zero-limb-skip CIOS must agree with the retained generic
            // reference limb-for-limb.
            let a = Fp::from_uint(&Uint::from_limbs(a));
            let b = Fp::from_uint(&Uint::from_limbs(b));
            let reference = Fp::from_mont(Fp::mont_mul_generic(a.mont_repr(), b.mont_repr()));
            prop_assert_eq!(a.mul(&b), reference);
        }

        #[test]
        fn prop_square_kernel_matches_mul(
            a in proptest::array::uniform8(any::<u64>()),
        ) {
            let a = Fp::from_uint(&Uint::from_limbs(a));
            prop_assert_eq!(a.square(), a.mul(&a));
            let generic = Fp::from_mont(Fp::mont_mul_generic(a.mont_repr(), a.mont_repr()));
            prop_assert_eq!(a.square(), generic);
            // Widening-square + wide-reduce alternate must agree too.
            prop_assert_eq!(a.square_via_wide(), generic);
        }

        #[test]
        fn prop_binary_gcd_inverse_matches_fermat(
            a in proptest::array::uniform8(any::<u64>()),
            b in proptest::array::uniform3(any::<u64>()),
        ) {
            // The binary-xgcd inversion kernel must agree with the retained
            // Fermat-exponentiation oracle over both moduli (sparse 512-bit
            // p and dense 160-bit q), zero included.
            let a = Fp::from_uint(&Uint::from_limbs(a));
            prop_assert_eq!(a.invert(), a.invert_fermat());
            let b = Fq::from_uint(&Uint::from_limbs(b));
            prop_assert_eq!(b.invert(), b.invert_fermat());
            prop_assert_eq!(Fp::ZERO.invert(), None);
        }

        #[test]
        fn prop_from_wide_matches_long_division(
            lo in proptest::array::uniform8(any::<u64>()),
            hi in proptest::array::uniform8(any::<u64>()),
        ) {
            let lo = Uint::from_limbs(lo);
            let hi = Uint::from_limbs(hi);
            let fast = Fp::from_wide(&lo, &hi);
            let slow = Fp::from_uint(&Uint::reduce_wide(&lo, &hi, &base_modulus()));
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_fq_sparse_and_wide_consistency(
            lo in proptest::array::uniform3(any::<u64>()),
            hi in proptest::array::uniform3(any::<u64>()),
        ) {
            // Same checks over the dense 160-bit modulus: the zero-limb skip
            // must be a no-op there and the wide reduction exact.
            let a = Fq::from_uint(&Uint::from_limbs(lo));
            let b = Fq::from_uint(&Uint::from_limbs(hi));
            let reference = Fq::from_mont(Fq::mont_mul_generic(a.mont_repr(), b.mont_repr()));
            prop_assert_eq!(a.mul(&b), reference);
            prop_assert_eq!(a.square(), a.mul(&a));
            let (lo, hi) = (Uint::from_limbs(lo), Uint::from_limbs(hi));
            let fast = Fq::from_wide(&lo, &hi);
            let slow = Fq::from_uint(&Uint::reduce_wide(&lo, &hi, &subgroup_order()));
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_fp2_lazy_mul_matches_schoolbook(
            a0 in proptest::array::uniform8(any::<u64>()),
            a1 in proptest::array::uniform8(any::<u64>()),
            b0 in proptest::array::uniform8(any::<u64>()),
            b1 in proptest::array::uniform8(any::<u64>()),
        ) {
            let a = Fp2::new(
                Fp::from_uint(&Uint::from_limbs(a0)),
                Fp::from_uint(&Uint::from_limbs(a1)),
            );
            let b = Fp2::new(
                Fp::from_uint(&Uint::from_limbs(b0)),
                Fp::from_uint(&Uint::from_limbs(b1)),
            );
            prop_assert_eq!(a.mul(&b), a.mul_schoolbook(&b));
            prop_assert_eq!(a.square(), a.square_schoolbook());
            prop_assert_eq!(a.square(), a.mul(&a));
        }

        #[test]
        fn prop_fq_pow_small(a in 1u64..1000, e in 0u32..16) {
            let base = Fq::from_u64(a);
            let mut expect = Fq::ONE;
            for _ in 0..e {
                expect = expect.mul(&base);
            }
            prop_assert_eq!(base.pow(&Uint::<3>::from_u64(e as u64)), expect);
        }
    }
}
