//! Generic Montgomery-form prime-field elements.
//!
//! [`Fe<P, N>`] is an element of the prime field defined by the parameter
//! type `P` (an implementation of [`FieldParams`]), stored in Montgomery
//! form over `N` 64-bit limbs. Multiplication uses the CIOS algorithm.

use core::cmp::Ordering;
use core::fmt;
use core::marker::PhantomData;

use peace_bigint::{adc, mac, Uint};
use rand::RngCore;

/// Compile-time parameters describing a prime field.
///
/// This trait is sealed in spirit: it is implemented only by the parameter
/// marker types in this crate ([`PMod`](crate::PMod), [`QMod`](crate::QMod)).
pub trait FieldParams<const N: usize>: Copy + Clone + Eq + Send + Sync + 'static {
    /// The field modulus (an odd prime).
    const MODULUS: Uint<N>;
    /// `2^(64·N) mod MODULUS` — the Montgomery form of 1.
    const R: Uint<N>;
    /// `R² mod MODULUS` — used to enter Montgomery form.
    const R2: Uint<N>;
    /// `-MODULUS⁻¹ mod 2^64`.
    const INV: u64;
    /// Bit length of the modulus.
    const NUM_BITS: u32;
    /// Canonical byte-encoding length: `ceil(NUM_BITS / 8)`.
    const NUM_BYTES: usize;
    /// Short human-readable field name used in `Debug` output.
    const NAME: &'static str;
}

/// A prime-field element in Montgomery form.
pub struct Fe<P: FieldParams<N>, const N: usize> {
    mont: Uint<N>,
    _p: PhantomData<P>,
}

impl<P: FieldParams<N>, const N: usize> Fe<P, N> {
    /// The additive identity.
    pub const ZERO: Self = Self {
        mont: Uint::ZERO,
        _p: PhantomData,
    };

    /// The multiplicative identity.
    pub const ONE: Self = Self {
        mont: P::R,
        _p: PhantomData,
    };

    /// Bit length of the field modulus (re-exported from the parameters so
    /// callers need not name the marker type).
    pub const NUM_BITS: u32 = P::NUM_BITS;

    #[inline]
    const fn from_mont(mont: Uint<N>) -> Self {
        Self {
            mont,
            _p: PhantomData,
        }
    }

    /// Montgomery reduction of the product accumulator (CIOS main loop).
    #[allow(clippy::needless_range_loop)]
    fn mont_mul(a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let al = a.as_limbs();
        let bl = b.as_limbs();
        let ml = P::MODULUS.as_limbs();
        let mut t = [0u64; N];
        let mut t_n = 0u64;
        for i in 0..N {
            // t += a * b[i]
            let mut carry = 0u64;
            for j in 0..N {
                let (v, c) = mac(t[j], al[j], bl[i], carry);
                t[j] = v;
                carry = c;
            }
            let (v, t_np1) = adc(t_n, carry, 0);
            t_n = v;
            // m = t[0] * INV mod 2^64; t += m * MODULUS; t >>= 64
            let m = t[0].wrapping_mul(P::INV);
            let (_, mut carry) = mac(t[0], m, ml[0], 0);
            for j in 1..N {
                let (v, c) = mac(t[j], m, ml[j], carry);
                t[j - 1] = v;
                carry = c;
            }
            let (v, c) = adc(t_n, carry, 0);
            t[N - 1] = v;
            t_n = t_np1.wrapping_add(c);
        }
        // Final conditional subtraction.
        let mut res = Uint::from_limbs(t);
        let (sub, borrow) = res.overflowing_sub(&P::MODULUS);
        if t_n != 0 || !borrow {
            res = sub;
        }
        res
    }

    /// Constructs a field element from an integer, reducing mod the modulus.
    pub fn from_uint(v: &Uint<N>) -> Self {
        let reduced = if *v < P::MODULUS {
            *v
        } else {
            v.rem(&P::MODULUS)
        };
        Self::from_mont(Self::mont_mul(&reduced, &P::R2))
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Self::from_uint(&Uint::from_u64(v))
    }

    /// Returns the canonical integer representative in `[0, MODULUS)`.
    pub fn to_uint(&self) -> Uint<N> {
        Self::mont_mul(&self.mont, &Uint::ONE)
    }

    /// Whether this is the additive identity.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.mont.is_zero()
    }

    /// Whether the canonical representative is odd (used for point-compression signs).
    pub fn is_odd(&self) -> bool {
        self.to_uint().is_odd()
    }

    /// Field addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Self::from_mont(self.mont.add_mod(&rhs.mont, &P::MODULUS))
    }

    /// Field subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        Self::from_mont(self.mont.sub_mod(&rhs.mont, &P::MODULUS))
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        if self.is_zero() {
            *self
        } else {
            Self::from_mont(P::MODULUS.wrapping_sub(&self.mont))
        }
    }

    /// Field multiplication.
    pub fn mul(&self, rhs: &Self) -> Self {
        Self::from_mont(Self::mont_mul(&self.mont, &rhs.mont))
    }

    /// Squaring (delegates to multiplication; adequate for this workload).
    pub fn square(&self) -> Self {
        self.mul(self)
    }

    /// Doubling.
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Exponentiation by a little-endian limb slice (left-to-right binary).
    pub fn pow_limbs(&self, exp: &[u64]) -> Self {
        // Find the highest set bit.
        let mut top = None;
        for (i, &l) in exp.iter().enumerate().rev() {
            if l != 0 {
                top = Some(64 * i as u32 + 63 - l.leading_zeros());
                break;
            }
        }
        let Some(top) = top else { return Self::ONE };
        let mut acc = Self::ONE;
        for i in (0..=top).rev() {
            acc = acc.square();
            if (exp[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Exponentiation by a `Uint` of any width.
    pub fn pow<const M: usize>(&self, exp: &Uint<M>) -> Self {
        self.pow_limbs(exp.as_limbs())
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// Returns `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let exp = P::MODULUS.wrapping_sub(&Uint::from_u64(2));
        Some(self.pow(&exp))
    }

    /// Legendre symbol: `1` for quadratic residues, `-1` for non-residues,
    /// `0` for zero.
    pub fn legendre(&self) -> i8 {
        if self.is_zero() {
            return 0;
        }
        // (p-1)/2
        let exp = P::MODULUS.wrapping_sub(&Uint::ONE).shr1();
        let r = self.pow(&exp);
        if r == Self::ONE {
            1
        } else {
            -1
        }
    }

    /// Square root for moduli `≡ 3 (mod 4)`: `self^((p+1)/4)`, verified.
    ///
    /// Returns `None` if `self` is not a quadratic residue.
    pub fn sqrt(&self) -> Option<Self> {
        debug_assert!(
            P::MODULUS.as_limbs()[0] & 3 == 3,
            "sqrt shortcut requires p ≡ 3 (mod 4)"
        );
        let exp = P::MODULUS.wrapping_add(&Uint::ONE).shr1().shr1();
        let r = self.pow(&exp);
        if r.square() == *self {
            Some(r)
        } else {
            None
        }
    }

    /// Uniformly random field element.
    pub fn random(rng: &mut impl RngCore) -> Self {
        // Sample double-width and reduce: bias is 2^-(64N), negligible.
        let mut bytes = vec![0u8; 16 * N];
        rng.fill_bytes(&mut bytes);
        let lo = Uint::from_be_bytes(&bytes[..8 * N]).expect("exact length");
        let hi = Uint::from_be_bytes(&bytes[8 * N..]).expect("exact length");
        Self::from_uint(&Uint::reduce_wide(&lo, &hi, &P::MODULUS))
    }

    /// Uniformly random *nonzero* field element.
    pub fn random_nonzero(rng: &mut impl RngCore) -> Self {
        loop {
            let v = Self::random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }

    /// Derives a field element from a byte string of any length
    /// (≥ `2·NUM_BYTES` recommended for negligible bias), interpreting it as
    /// a big-endian integer reduced mod the modulus.
    pub fn from_wide_bytes(bytes: &[u8]) -> Self {
        if bytes.len() <= 16 * N {
            let mut full = vec![0u8; 16 * N];
            full[16 * N - bytes.len()..].copy_from_slice(bytes);
            let hi = Uint::from_be_bytes(&full[..8 * N]).expect("exact length");
            let lo = Uint::from_be_bytes(&full[8 * N..]).expect("exact length");
            return Self::from_uint(&Uint::reduce_wide(&lo, &hi, &P::MODULUS));
        }
        // Longer inputs: Horner evaluation base 2^(64·N) over N-limb chunks.
        let chunk_bytes = 8 * N;
        // 2^(64·N) mod m in Montgomery form is mont(R) = R·R mod m = mont_mul(R2, R)…
        // simplest correct route: R as a plain integer equals 2^(64N) mod m.
        let shift = Self::from_uint(&P::R);
        let mut acc = Self::ZERO;
        let mut rest = bytes;
        // Leading partial chunk first.
        let lead = rest.len() % chunk_bytes;
        if lead != 0 {
            acc = Self::from_uint(
                &Uint::from_be_bytes_padded(&rest[..lead]).expect("fits in N limbs"),
            );
            rest = &rest[lead..];
        }
        while !rest.is_empty() {
            let chunk = Uint::from_be_bytes(&rest[..chunk_bytes]).expect("exact length");
            acc = acc.mul(&shift).add(&Self::from_uint(&chunk));
            rest = &rest[chunk_bytes..];
        }
        acc
    }

    /// Canonical big-endian encoding, `P::NUM_BYTES` long.
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let full = self.to_uint().to_be_bytes();
        full[full.len() - P::NUM_BYTES..].to_vec()
    }

    /// Parses a canonical encoding (exactly `P::NUM_BYTES`, value < modulus).
    pub fn from_canonical_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != P::NUM_BYTES {
            return None;
        }
        let v = Uint::from_be_bytes_padded(bytes)?;
        if v.cmp(&P::MODULUS) == Ordering::Less {
            Some(Self::from_uint(&v))
        } else {
            None
        }
    }
}

impl<P: FieldParams<N>, const N: usize> Clone for Fe<P, N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: FieldParams<N>, const N: usize> Copy for Fe<P, N> {}

impl<P: FieldParams<N>, const N: usize> PartialEq for Fe<P, N> {
    fn eq(&self, other: &Self) -> bool {
        self.mont == other.mont
    }
}
impl<P: FieldParams<N>, const N: usize> Eq for Fe<P, N> {}

impl<P: FieldParams<N>, const N: usize> core::hash::Hash for Fe<P, N> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.mont.hash(state);
    }
}

impl<P: FieldParams<N>, const N: usize> Default for Fe<P, N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<P: FieldParams<N>, const N: usize> fmt::Debug for Fe<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({:?})", P::NAME, self.to_uint())
    }
}

impl<P: FieldParams<N>, const N: usize> fmt::Display for Fe<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<P: FieldParams<N>, const N: usize> core::ops::Add for Fe<P, N> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fe::add(&self, &rhs)
    }
}
impl<P: FieldParams<N>, const N: usize> core::ops::Sub for Fe<P, N> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fe::sub(&self, &rhs)
    }
}
impl<P: FieldParams<N>, const N: usize> core::ops::Mul for Fe<P, N> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fe::mul(&self, &rhs)
    }
}
impl<P: FieldParams<N>, const N: usize> core::ops::Neg for Fe<P, N> {
    type Output = Self;
    fn neg(self) -> Self {
        Fe::neg(&self)
    }
}
