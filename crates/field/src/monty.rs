//! Generic Montgomery-form prime-field elements.
//!
//! [`Fe<P, N>`] is an element of the prime field defined by the parameter
//! type `P` (an implementation of [`FieldParams`]), stored in Montgomery
//! form over `N` 64-bit limbs. Multiplication uses the CIOS algorithm.

use core::cmp::Ordering;
use core::fmt;
use core::marker::PhantomData;

use peace_bigint::{adc, mac, Uint};
use rand::RngCore;

/// Compile-time parameters describing a prime field.
///
/// This trait is sealed in spirit: it is implemented only by the parameter
/// marker types in this crate ([`PMod`](crate::PMod), [`QMod`](crate::QMod)).
pub trait FieldParams<const N: usize>: Copy + Clone + Eq + Send + Sync + 'static {
    /// The field modulus (an odd prime).
    const MODULUS: Uint<N>;
    /// `2^(64·N) mod MODULUS` — the Montgomery form of 1.
    const R: Uint<N>;
    /// `R² mod MODULUS` — used to enter Montgomery form.
    const R2: Uint<N>;
    /// `-MODULUS⁻¹ mod 2^64`.
    const INV: u64;
    /// Bit length of the modulus.
    const NUM_BITS: u32;
    /// Canonical byte-encoding length: `ceil(NUM_BITS / 8)`.
    const NUM_BYTES: usize;
    /// Short human-readable field name used in `Debug` output.
    const NAME: &'static str;
}

/// A prime-field element in Montgomery form.
pub struct Fe<P: FieldParams<N>, const N: usize> {
    mont: Uint<N>,
    _p: PhantomData<P>,
}

impl<P: FieldParams<N>, const N: usize> Fe<P, N> {
    /// The additive identity.
    pub const ZERO: Self = Self {
        mont: Uint::ZERO,
        _p: PhantomData,
    };

    /// The multiplicative identity.
    pub const ONE: Self = Self {
        mont: P::R,
        _p: PhantomData,
    };

    /// Bit length of the field modulus (re-exported from the parameters so
    /// callers need not name the marker type).
    pub const NUM_BITS: u32 = P::NUM_BITS;

    #[inline]
    pub(crate) const fn from_mont(mont: Uint<N>) -> Self {
        Self {
            mont,
            _p: PhantomData,
        }
    }

    /// The raw Montgomery representation (for the lazy-reduction `F_p²`
    /// kernels, which operate on unreduced wide products of these limbs).
    #[inline]
    pub(crate) const fn mont_repr(&self) -> &Uint<N> {
        &self.mont
    }

    /// Montgomery multiplication: CIOS with a zero-limb skip in the
    /// reduction phase.
    ///
    /// `P::MODULUS.as_limbs()[j]` is a compile-time constant after
    /// monomorphization, so the `ml[j] == 0` branch folds away entirely:
    /// a sparse modulus (the 512-bit `p` has four nonzero limbs) pays only
    /// a carry propagation for each zero limb instead of a multiply.
    ///
    /// Accepts any `a < 2^(64N)` as long as `b < MODULUS` (or vice versa):
    /// the accumulator then stays below `2·MODULUS` and the single final
    /// conditional subtraction still canonicalizes — which is what lets
    /// [`Self::from_uint`] and [`Self::from_wide`] skip long division.
    #[allow(clippy::needless_range_loop)]
    fn mont_mul(a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let al = a.as_limbs();
        let bl = b.as_limbs();
        let ml = P::MODULUS.as_limbs();
        let mut t = [0u64; N];
        let mut t_n = 0u64;
        for i in 0..N {
            // t += a * b[i]
            let mut carry = 0u64;
            for j in 0..N {
                let (v, c) = mac(t[j], al[j], bl[i], carry);
                t[j] = v;
                carry = c;
            }
            let (v, t_np1) = adc(t_n, carry, 0);
            t_n = v;
            // m = t[0] * INV mod 2^64; t += m * MODULUS; t >>= 64
            let m = t[0].wrapping_mul(P::INV);
            let (_, mut carry) = mac(t[0], m, ml[0], 0);
            for j in 1..N {
                let (v, c) = if ml[j] == 0 {
                    adc(t[j], carry, 0)
                } else {
                    mac(t[j], m, ml[j], carry)
                };
                t[j - 1] = v;
                carry = c;
            }
            let (v, c) = adc(t_n, carry, 0);
            t[N - 1] = v;
            t_n = t_np1.wrapping_add(c);
        }
        // Final conditional subtraction.
        let mut res = Uint::from_limbs(t);
        let (sub, borrow) = res.overflowing_sub(&P::MODULUS);
        if t_n != 0 || !borrow {
            res = sub;
        }
        res
    }

    /// Reference CIOS without the zero-limb skip — retained verbatim as the
    /// oracle for the kernel-equivalence proptests, never on the hot path.
    #[doc(hidden)]
    #[allow(clippy::needless_range_loop)]
    pub fn mont_mul_generic(a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let al = a.as_limbs();
        let bl = b.as_limbs();
        let ml = P::MODULUS.as_limbs();
        let mut t = [0u64; N];
        let mut t_n = 0u64;
        for i in 0..N {
            let mut carry = 0u64;
            for j in 0..N {
                let (v, c) = mac(t[j], al[j], bl[i], carry);
                t[j] = v;
                carry = c;
            }
            let (v, t_np1) = adc(t_n, carry, 0);
            t_n = v;
            let m = t[0].wrapping_mul(P::INV);
            let (_, mut carry) = mac(t[0], m, ml[0], 0);
            for j in 1..N {
                let (v, c) = mac(t[j], m, ml[j], carry);
                t[j - 1] = v;
                carry = c;
            }
            let (v, c) = adc(t_n, carry, 0);
            t[N - 1] = v;
            t_n = t_np1.wrapping_add(c);
        }
        let mut res = Uint::from_limbs(t);
        let (sub, borrow) = res.overflowing_sub(&P::MODULUS);
        if t_n != 0 || !borrow {
            res = sub;
        }
        res
    }

    /// Dedicated Montgomery squaring: symmetric widening square
    /// (`N(N+1)/2` limb products instead of `N²`) followed by one wide
    /// Montgomery reduction. `a² < p² < p·R` satisfies the reduction
    /// contract.
    ///
    /// Measured *slower* than the interleaved CIOS multiply on this
    /// portable backend (the split widening-then-reduce pass spills the
    /// 2N-limb accumulator to memory), so [`Self::square`] does not use
    /// it; retained as the equivalence oracle for the widening-square
    /// primitive that backs the lazy-reduction `F_p²` kernels.
    fn mont_sqr(a: &Uint<N>) -> Uint<N> {
        let (lo, hi) = a.square_wide();
        Self::mont_reduce_wide(&lo, &hi)
    }

    /// Squaring through [`Self::mont_sqr`] — oracle entry point for the
    /// equivalence proptests; not on the hot path.
    #[doc(hidden)]
    pub fn square_via_wide(&self) -> Self {
        Self::from_mont(Self::mont_sqr(&self.mont))
    }

    /// Montgomery reduction of a double-width value `T = hi·2^(64N) + lo`.
    ///
    /// **Contract:** `T < MODULUS·2^(64N)`. The reduced accumulator is then
    /// below `2·MODULUS`, so a single conditional subtraction (driven by the
    /// overflow bit plus a comparison) canonicalizes the result. This is the
    /// primitive behind the lazy-reduction `F_p²` kernels: sums and
    /// differences of wide products are reduced *once*, after the additions,
    /// instead of once per product.
    ///
    /// Zero modulus limbs skip their multiply exactly as in [`mont_mul`].
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn mont_reduce_wide(lo: &Uint<N>, hi: &Uint<N>) -> Uint<N> {
        #[inline(always)]
        fn get<const N: usize>(lo: &[u64; N], hi: &[u64; N], k: usize) -> u64 {
            if k < N {
                lo[k]
            } else {
                hi[k - N]
            }
        }
        #[inline(always)]
        fn set<const N: usize>(lo: &mut [u64; N], hi: &mut [u64; N], k: usize, v: u64) {
            if k < N {
                lo[k] = v;
            } else {
                hi[k - N] = v;
            }
        }
        let ml = P::MODULUS.as_limbs();
        let mut tl = *lo.as_limbs();
        let mut th = *hi.as_limbs();
        // Deferred carry flowing into position i+N of the next round: each
        // round's carry-out lands one position later, so a single rolling
        // limb suffices.
        let mut deferred = 0u64;
        for i in 0..N {
            let m = get(&tl, &th, i).wrapping_mul(P::INV);
            let (_, mut carry) = mac(get(&tl, &th, i), m, ml[0], 0);
            for j in 1..N {
                let (v, c) = if ml[j] == 0 {
                    adc(get(&tl, &th, i + j), carry, 0)
                } else {
                    mac(get(&tl, &th, i + j), m, ml[j], carry)
                };
                set(&mut tl, &mut th, i + j, v);
                carry = c;
            }
            let (v, c) = adc(get(&tl, &th, i + N), carry, deferred);
            set(&mut tl, &mut th, i + N, v);
            deferred = c;
        }
        let mut res = Uint::from_limbs(th);
        let (sub, borrow) = res.overflowing_sub(&P::MODULUS);
        if deferred != 0 || !borrow {
            res = sub;
        }
        res
    }

    /// Constructs a field element from an integer, reducing mod the modulus.
    ///
    /// No long division: CIOS against `R²` accepts a full-width (unreduced)
    /// multiplicand directly — see [`mont_mul`]'s relaxed input bound.
    pub fn from_uint(v: &Uint<N>) -> Self {
        Self::from_mont(Self::mont_mul(v, &P::R2))
    }

    /// Reduces a double-width integer `hi·2^(64N) + lo` into the field.
    ///
    /// Three CIOS passes (`mont(lo)` plus `mont(hi·2^(64N)) =
    /// mont_mul(mont_mul(hi, R²), R²)`) replace the bitwise long division of
    /// [`Uint::reduce_wide`] — this is what hash-to-field and rejection-free
    /// random sampling run per draw, so it must not cost O(bits²).
    pub fn from_wide(lo: &Uint<N>, hi: &Uint<N>) -> Self {
        let lo_m = Self::mont_mul(lo, &P::R2);
        let hi_m = Self::mont_mul(&Self::mont_mul(hi, &P::R2), &P::R2);
        Self::from_mont(lo_m.add_mod(&hi_m, &P::MODULUS))
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Self::from_uint(&Uint::from_u64(v))
    }

    /// Returns the canonical integer representative in `[0, MODULUS)`.
    pub fn to_uint(&self) -> Uint<N> {
        Self::mont_mul(&self.mont, &Uint::ONE)
    }

    /// Whether this is the additive identity.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.mont.is_zero()
    }

    /// Whether the canonical representative is odd (used for point-compression signs).
    pub fn is_odd(&self) -> bool {
        self.to_uint().is_odd()
    }

    /// Field addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Self::from_mont(self.mont.add_mod(&rhs.mont, &P::MODULUS))
    }

    /// Field subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        Self::from_mont(self.mont.sub_mod(&rhs.mont, &P::MODULUS))
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        if self.is_zero() {
            *self
        } else {
            Self::from_mont(P::MODULUS.wrapping_sub(&self.mont))
        }
    }

    /// Field multiplication.
    pub fn mul(&self, rhs: &Self) -> Self {
        Self::from_mont(Self::mont_mul(&self.mont, &rhs.mont))
    }

    /// Squaring. The interleaved CIOS multiply beats the symmetric
    /// widening square + separate wide reduction ([`Self::mont_sqr`]) on
    /// this portable backend — the fused reduction keeps the accumulator
    /// in registers, which outweighs halving the limb products — so the
    /// dedicated kernel stays reserved for the lazy-reduction `F_p²` paths
    /// where the wide form is what enables deferring reductions.
    pub fn square(&self) -> Self {
        Self::from_mont(Self::mont_mul(&self.mont, &self.mont))
    }

    /// Doubling.
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Exponentiation by a little-endian limb slice: left-to-right sliding
    /// window (width 4) over a table of the 8 odd powers `self^1 … self^15`.
    ///
    /// Versus plain binary, the multiply count for a `b`-bit exponent drops
    /// from ≈`b/2` to ≈`b/5` (+7 table setup) while the square count is
    /// unchanged — square-root extraction (a fixed 510-bit exponent on the
    /// hash-to-curve path) is the main beneficiary.
    pub fn pow_limbs(&self, exp: &[u64]) -> Self {
        #[inline]
        fn bit(exp: &[u64], i: u32) -> bool {
            (exp[(i / 64) as usize] >> (i % 64)) & 1 == 1
        }
        // Find the highest set bit.
        let mut top = None;
        for (i, &l) in exp.iter().enumerate().rev() {
            if l != 0 {
                top = Some(64 * i as u32 + 63 - l.leading_zeros());
                break;
            }
        }
        let Some(top) = top else { return Self::ONE };
        // Odd powers: table[i] = self^(2i+1).
        let sq = self.square();
        let mut table = [*self; 8];
        for i in 1..8 {
            table[i] = table[i - 1].mul(&sq);
        }
        let mut acc = Self::ONE;
        let mut i = top as i64;
        while i >= 0 {
            if !bit(exp, i as u32) {
                acc = acc.square();
                i -= 1;
                continue;
            }
            // Longest window ending on a set bit, at most 4 bits wide.
            let mut j = (i - 3).max(0);
            while !bit(exp, j as u32) {
                j += 1;
            }
            let mut window = 0usize;
            for k in (j..=i).rev() {
                acc = acc.square();
                window = (window << 1) | usize::from(bit(exp, k as u32));
            }
            acc = acc.mul(&table[window >> 1]);
            i = j - 1;
        }
        acc
    }

    /// Exponentiation by a `Uint` of any width.
    pub fn pow<const M: usize>(&self, exp: &Uint<M>) -> Self {
        self.pow_limbs(exp.as_limbs())
    }

    /// Multiplicative inverse via the binary extended Euclidean algorithm
    /// (~10× faster than the Fermat exponentiation it replaced; retained as
    /// [`Self::invert_fermat`] for the equivalence proptests).
    ///
    /// Runs in time dependent on the value (fine here: inversions touch
    /// projective z-coordinates and pairing values, never long-term keys).
    ///
    /// Returns `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        // The stored representation is m = a·R mod p. Binary xgcd gives
        // z ≡ m⁻¹ = a⁻¹·R⁻¹; two ladder steps by R² lift it back to
        // Montgomery form: (z·R²·R⁻¹)·R²·R⁻¹ = a⁻¹·R.
        let z = Self::inv_mod_binary(&self.mont);
        let t = Self::mont_mul(&z, &P::R2);
        Some(Self::from_mont(Self::mont_mul(&t, &P::R2)))
    }

    /// Reference Fermat-exponentiation inverse (`self^(p−2)`), kept as the
    /// oracle for the binary-GCD kernel. Returns `None` for zero.
    #[doc(hidden)]
    pub fn invert_fermat(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let exp = P::MODULUS.wrapping_sub(&Uint::from_u64(2));
        Some(self.pow(&exp))
    }

    /// `m⁻¹ mod p` for `m ≢ 0` via binary extended GCD (p odd prime).
    ///
    /// Invariants: `u·m ≡ a` and `v·m ≡ b (mod p)`; when `a` reaches 0,
    /// `b = gcd(m, p) = 1` and `v` is the inverse.
    fn inv_mod_binary(m: &Uint<N>) -> Uint<N> {
        // Halves `x` mod p: even values shift, odd values add the (odd)
        // modulus first; the add may carry one bit past the top limb.
        #[inline]
        fn half_mod<const N: usize>(x: &Uint<N>, p: &Uint<N>) -> Uint<N> {
            if x.is_even() {
                x.shr1()
            } else {
                let (s, carry) = x.overflowing_add(p);
                let mut h = s.shr1().into_limbs();
                if carry {
                    h[N - 1] |= 1 << 63;
                }
                Uint::from_limbs(h)
            }
        }
        let p = P::MODULUS;
        let mut a = *m;
        let mut b = p;
        let mut u = Uint::<N>::ONE;
        let mut v = Uint::<N>::ZERO;
        while !a.is_zero() {
            while a.is_even() {
                a = a.shr1();
                u = half_mod(&u, &p);
            }
            while b.is_even() {
                b = b.shr1();
                v = half_mod(&v, &p);
            }
            let (d, borrow) = a.overflowing_sub(&b);
            if !borrow {
                a = d;
                u = u.sub_mod(&v, &p);
            } else {
                b = b.wrapping_sub(&a);
                v = v.sub_mod(&u, &p);
            }
        }
        debug_assert_eq!(b, Uint::ONE, "modulus is prime, input nonzero");
        v
    }

    /// Legendre symbol: `1` for quadratic residues, `-1` for non-residues,
    /// `0` for zero.
    pub fn legendre(&self) -> i8 {
        if self.is_zero() {
            return 0;
        }
        // (p-1)/2
        let exp = P::MODULUS.wrapping_sub(&Uint::ONE).shr1();
        let r = self.pow(&exp);
        if r == Self::ONE {
            1
        } else {
            -1
        }
    }

    /// Square root for moduli `≡ 3 (mod 4)`: `self^((p+1)/4)`, verified.
    ///
    /// Returns `None` if `self` is not a quadratic residue.
    pub fn sqrt(&self) -> Option<Self> {
        debug_assert!(
            P::MODULUS.as_limbs()[0] & 3 == 3,
            "sqrt shortcut requires p ≡ 3 (mod 4)"
        );
        let exp = P::MODULUS.wrapping_add(&Uint::ONE).shr1().shr1();
        let r = self.pow(&exp);
        if r.square() == *self {
            Some(r)
        } else {
            None
        }
    }

    /// Uniformly random field element.
    pub fn random(rng: &mut impl RngCore) -> Self {
        // Sample double-width and reduce: bias is 2^-(64N), negligible.
        let mut bytes = vec![0u8; 16 * N];
        rng.fill_bytes(&mut bytes);
        let lo = Uint::from_be_bytes(&bytes[..8 * N]).expect("exact length");
        let hi = Uint::from_be_bytes(&bytes[8 * N..]).expect("exact length");
        Self::from_wide(&lo, &hi)
    }

    /// Uniformly random *nonzero* field element.
    pub fn random_nonzero(rng: &mut impl RngCore) -> Self {
        loop {
            let v = Self::random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }

    /// Derives a field element from a byte string of any length
    /// (≥ `2·NUM_BYTES` recommended for negligible bias), interpreting it as
    /// a big-endian integer reduced mod the modulus.
    pub fn from_wide_bytes(bytes: &[u8]) -> Self {
        if bytes.len() <= 16 * N {
            let mut full = vec![0u8; 16 * N];
            full[16 * N - bytes.len()..].copy_from_slice(bytes);
            let hi = Uint::from_be_bytes(&full[..8 * N]).expect("exact length");
            let lo = Uint::from_be_bytes(&full[8 * N..]).expect("exact length");
            return Self::from_wide(&lo, &hi);
        }
        // Longer inputs: Horner evaluation base 2^(64·N) over N-limb chunks.
        let chunk_bytes = 8 * N;
        // 2^(64·N) mod m in Montgomery form is mont(R) = R·R mod m = mont_mul(R2, R)…
        // simplest correct route: R as a plain integer equals 2^(64N) mod m.
        let shift = Self::from_uint(&P::R);
        let mut acc = Self::ZERO;
        let mut rest = bytes;
        // Leading partial chunk first.
        let lead = rest.len() % chunk_bytes;
        if lead != 0 {
            acc = Self::from_uint(
                &Uint::from_be_bytes_padded(&rest[..lead]).expect("fits in N limbs"),
            );
            rest = &rest[lead..];
        }
        while !rest.is_empty() {
            let chunk = Uint::from_be_bytes(&rest[..chunk_bytes]).expect("exact length");
            acc = acc.mul(&shift).add(&Self::from_uint(&chunk));
            rest = &rest[chunk_bytes..];
        }
        acc
    }

    /// Canonical big-endian encoding, `P::NUM_BYTES` long.
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let full = self.to_uint().to_be_bytes();
        full[full.len() - P::NUM_BYTES..].to_vec()
    }

    /// Parses a canonical encoding (exactly `P::NUM_BYTES`, value < modulus).
    pub fn from_canonical_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != P::NUM_BYTES {
            return None;
        }
        let v = Uint::from_be_bytes_padded(bytes)?;
        if v.cmp(&P::MODULUS) == Ordering::Less {
            Some(Self::from_uint(&v))
        } else {
            None
        }
    }
}

impl<P: FieldParams<N>, const N: usize> Clone for Fe<P, N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: FieldParams<N>, const N: usize> Copy for Fe<P, N> {}

impl<P: FieldParams<N>, const N: usize> PartialEq for Fe<P, N> {
    fn eq(&self, other: &Self) -> bool {
        self.mont == other.mont
    }
}
impl<P: FieldParams<N>, const N: usize> Eq for Fe<P, N> {}

impl<P: FieldParams<N>, const N: usize> core::hash::Hash for Fe<P, N> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.mont.hash(state);
    }
}

impl<P: FieldParams<N>, const N: usize> Default for Fe<P, N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<P: FieldParams<N>, const N: usize> fmt::Debug for Fe<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({:?})", P::NAME, self.to_uint())
    }
}

impl<P: FieldParams<N>, const N: usize> fmt::Display for Fe<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<P: FieldParams<N>, const N: usize> core::ops::Add for Fe<P, N> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fe::add(&self, &rhs)
    }
}
impl<P: FieldParams<N>, const N: usize> core::ops::Sub for Fe<P, N> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fe::sub(&self, &rhs)
    }
}
impl<P: FieldParams<N>, const N: usize> core::ops::Mul for Fe<P, N> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fe::mul(&self, &rhs)
    }
}
impl<P: FieldParams<N>, const N: usize> core::ops::Neg for Fe<P, N> {
    type Output = Self;
    fn neg(self) -> Self {
        Fe::neg(&self)
    }
}
