//! Epoch-partitioned user-revocation-list store with delta-compressed
//! diffs.
//!
//! The paper distributes the URL as a full signed list in every beacon;
//! at metropolitan scale with realistic churn that is O(|URL|) bytes per
//! refresh for a list that changed by a handful of entries. This store
//! keeps the list **partitioned by key epoch** (a system-key rotation
//! empties the URL — the paper's own |URL| control knob) and, within an
//! epoch, versioned per revocation, so a consumer at version `v` can be
//! brought current with a coalesced [`UrlDelta`] of O(churn) tokens
//! instead of a full fetch.
//!
//! Both ends of the distribution path run the same type: the operator
//! side records revocations into a bounded delta log and serves
//! [`EpochUrlStore::delta_since`]; the router side applies deltas with
//! [`EpochUrlStore::apply_delta`] under the same version-monotonicity
//! discipline `adopt_lists` enforces for full lists (exact chain match —
//! a gap or epoch mismatch refuses and forces a full resync, it never
//! guesses). [`EpochUrlStore::digest`] gives both ends an
//! order-insensitive fingerprint to prove convergence.

use std::collections::{HashMap, VecDeque};

use peace_groupsig::RevocationToken;
use peace_wire::{Decode, Encode, Reader, Writer};

/// How many coalesced log entries the operator side retains. A consumer
/// further behind than this falls back to a full fetch — the log bounds
/// operator memory, not correctness.
pub const DEFAULT_DELTA_LOG_CAP: usize = 1024;

/// A delta-compressed URL diff: the tokens revoked (and un-revoked)
/// between two versions of one epoch's list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UrlDelta {
    /// Key epoch this diff belongs to — diffs never span a rotation
    /// (rotation empties the list; consumers full-sync into a new epoch).
    pub epoch: u64,
    /// The version this diff applies on top of (exact-match required).
    pub from_version: u64,
    /// The version reached after applying.
    pub to_version: u64,
    /// Tokens added to the URL.
    pub added: Vec<RevocationToken>,
    /// Tokens removed from the URL (dispute resolution lifting a
    /// revocation) — rare, but they force prefilter rebuilds downstream,
    /// so they are carried explicitly rather than synthesized.
    pub removed: Vec<RevocationToken>,
}

impl UrlDelta {
    /// Whether the diff carries no membership change (pure version ack).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

impl Encode for UrlDelta {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_u64(self.from_version);
        w.put_u64(self.to_version);
        w.put_seq(&self.added);
        w.put_seq(&self.removed);
    }
}

impl Decode for UrlDelta {
    fn decode(r: &mut Reader<'_>) -> peace_wire::Result<Self> {
        Ok(Self {
            epoch: r.get_u64()?,
            from_version: r.get_u64()?,
            to_version: r.get_u64()?,
            added: r.get_seq()?,
            removed: r.get_seq()?,
        })
    }
}

/// Why a delta could not be applied. Every variant means "full resync",
/// never "guess".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeltaError {
    /// The diff belongs to a different key epoch.
    EpochMismatch,
    /// The diff's `from_version` does not chain onto the store's current
    /// version (a dropped or reordered intermediate diff).
    VersionGap,
    /// The diff is internally inconsistent (`to_version <= from_version`
    /// with changes, or a removal of an absent token).
    Inconsistent,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::EpochMismatch => write!(f, "url delta from a different epoch"),
            DeltaError::VersionGap => write!(f, "url delta does not chain onto current version"),
            DeltaError::Inconsistent => write!(f, "url delta internally inconsistent"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Result of applying a delta.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeltaOutcome {
    /// The store advanced to the delta's `to_version`.
    Applied,
    /// The delta's range is entirely at or behind the store's version — a
    /// duplicated frame; ignored idempotently.
    AlreadyCurrent,
}

/// What the operator can serve a consumer at a given version.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeltaPlan {
    /// The consumer already holds the current version.
    UpToDate,
    /// A coalesced diff brings the consumer current.
    Delta(UrlDelta),
    /// The consumer is behind the retained log (or ahead / cross-epoch):
    /// it must fetch the full list.
    NeedFull,
}

/// The epoch-partitioned, versioned URL store (see module docs).
#[derive(Clone, Debug)]
pub struct EpochUrlStore {
    epoch: u64,
    version: u64,
    tokens: Vec<RevocationToken>,
    /// token bytes → position in `tokens` (O(1) dedup and removal).
    index: HashMap<Vec<u8>, usize>,
    /// Operator-side per-change log, oldest first; each entry advances
    /// exactly one version.
    log: VecDeque<UrlDelta>,
    log_cap: usize,
}

impl EpochUrlStore {
    /// An empty store at version 0 of `epoch`.
    pub fn new(epoch: u64) -> Self {
        Self {
            epoch,
            version: 0,
            tokens: Vec::new(),
            index: HashMap::new(),
            log: VecDeque::new(),
            log_cap: DEFAULT_DELTA_LOG_CAP,
        }
    }

    /// Caps the retained delta log (operator-side memory bound).
    pub fn set_log_cap(&mut self, cap: usize) {
        self.log_cap = cap;
        while self.log.len() > self.log_cap {
            self.log.pop_front();
        }
    }

    /// Replaces the entire list (a full fetch landing, or the operator
    /// seeding from persistent state). Clears the delta log — diffs
    /// across a full install cannot be synthesized.
    pub fn install_full(&mut self, epoch: u64, version: u64, tokens: &[RevocationToken]) {
        self.epoch = epoch;
        self.version = version;
        self.tokens = tokens.to_vec();
        self.index = self
            .tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.to_bytes(), i))
            .collect();
        // Deduplicate defensively: index wins, later duplicates dropped.
        if self.index.len() != self.tokens.len() {
            let mut seen = HashMap::new();
            let mut dedup = Vec::with_capacity(self.index.len());
            for t in &self.tokens {
                if seen.insert(t.to_bytes(), dedup.len()).is_none() {
                    dedup.push(*t);
                }
            }
            self.tokens = dedup;
            self.index = seen;
        }
        self.log.clear();
    }

    /// Records one revocation (operator side): bumps the version and
    /// appends a single-token delta to the log. Returns `false` (no
    /// version bump) if the token is already listed.
    pub fn record_add(&mut self, token: &RevocationToken) -> bool {
        let key = token.to_bytes();
        if self.index.contains_key(&key) {
            return false;
        }
        self.index.insert(key, self.tokens.len());
        self.tokens.push(*token);
        let from = self.version;
        self.version += 1;
        self.push_log(UrlDelta {
            epoch: self.epoch,
            from_version: from,
            to_version: self.version,
            added: vec![*token],
            removed: Vec::new(),
        });
        true
    }

    /// Lifts one revocation (operator side, dispute resolution). Returns
    /// `false` if the token is not listed.
    pub fn record_remove(&mut self, token: &RevocationToken) -> bool {
        let key = token.to_bytes();
        let Some(pos) = self.index.remove(&key) else {
            return false;
        };
        self.tokens.swap_remove(pos);
        if pos < self.tokens.len() {
            self.index.insert(self.tokens[pos].to_bytes(), pos);
        }
        let from = self.version;
        self.version += 1;
        self.push_log(UrlDelta {
            epoch: self.epoch,
            from_version: from,
            to_version: self.version,
            added: Vec::new(),
            removed: vec![*token],
        });
        true
    }

    /// System-key rotation: the list empties (every outstanding key is
    /// dead by construction), the version still advances monotonically,
    /// and the log clears — deltas never span epochs.
    pub fn rotate_epoch(&mut self, new_epoch: u64) {
        self.epoch = new_epoch;
        self.version += 1;
        self.tokens.clear();
        self.index.clear();
        self.log.clear();
    }

    fn push_log(&mut self, d: UrlDelta) {
        self.log.push_back(d);
        while self.log.len() > self.log_cap {
            self.log.pop_front();
        }
    }

    /// Serves a consumer that holds `(epoch, version)`: a coalesced diff,
    /// an up-to-date ack, or a full-fetch referral (see [`DeltaPlan`]).
    ///
    /// Coalescing cancels add/remove pairs, so a token revoked and lifted
    /// within the window costs the consumer nothing.
    pub fn delta_since(&self, epoch: u64, version: u64) -> DeltaPlan {
        if epoch != self.epoch || version > self.version {
            return DeltaPlan::NeedFull;
        }
        if version == self.version {
            return DeltaPlan::UpToDate;
        }
        let Some(start) = self.log.iter().position(|d| d.from_version == version) else {
            return DeltaPlan::NeedFull;
        };
        let mut added: Vec<RevocationToken> = Vec::new();
        let mut added_keys: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut removed: Vec<RevocationToken> = Vec::new();
        let mut expect = version;
        for d in self.log.iter().skip(start) {
            if d.from_version != expect {
                // Interior log damage (should not happen) — refuse.
                return DeltaPlan::NeedFull;
            }
            expect = d.to_version;
            for t in &d.added {
                if let std::collections::hash_map::Entry::Vacant(e) = added_keys.entry(t.to_bytes())
                {
                    e.insert(added.len());
                    added.push(*t);
                }
            }
            for t in &d.removed {
                match added_keys.remove(&t.to_bytes()) {
                    Some(pos) => {
                        // Revoked and lifted inside the window: cancels.
                        added[pos] = RevocationToken(peace_curve::G1::IDENTITY);
                    }
                    None => removed.push(*t),
                }
            }
        }
        if expect != self.version {
            return DeltaPlan::NeedFull;
        }
        let added: Vec<RevocationToken> =
            added.into_iter().filter(|t| !t.0.is_identity()).collect();
        DeltaPlan::Delta(UrlDelta {
            epoch: self.epoch,
            from_version: version,
            to_version: self.version,
            added,
            removed,
        })
    }

    /// Applies a diff (consumer side) under exact version chaining.
    ///
    /// Idempotent for duplicated frames ([`DeltaOutcome::AlreadyCurrent`]);
    /// reordered or gapped frames refuse with [`DeltaError::VersionGap`]
    /// so the caller falls back to a full fetch.
    ///
    /// # Errors
    ///
    /// See [`DeltaError`]; the store is unchanged on any error.
    pub fn apply_delta(&mut self, d: &UrlDelta) -> Result<DeltaOutcome, DeltaError> {
        if d.epoch != self.epoch {
            return Err(DeltaError::EpochMismatch);
        }
        if d.to_version < d.from_version || (d.to_version == d.from_version && !d.is_empty()) {
            return Err(DeltaError::Inconsistent);
        }
        if d.to_version <= self.version {
            return Ok(DeltaOutcome::AlreadyCurrent);
        }
        if d.from_version != self.version {
            return Err(DeltaError::VersionGap);
        }
        // Validate before mutating: removals must name present tokens and
        // adds must not collide with them after coalescing.
        for t in &d.removed {
            if !self.index.contains_key(&t.to_bytes()) {
                return Err(DeltaError::Inconsistent);
            }
        }
        for t in &d.removed {
            let key = t.to_bytes();
            if let Some(pos) = self.index.remove(&key) {
                self.tokens.swap_remove(pos);
                if pos < self.tokens.len() {
                    self.index.insert(self.tokens[pos].to_bytes(), pos);
                }
            }
        }
        for t in &d.added {
            let key = t.to_bytes();
            if !self.index.contains_key(&key) {
                self.index.insert(key, self.tokens.len());
                self.tokens.push(*t);
            }
        }
        self.version = d.to_version;
        Ok(DeltaOutcome::Applied)
    }

    /// The current token list (iteration order is insertion order, which
    /// both ends may differ on — compare [`Self::digest`], not slices).
    pub fn tokens(&self) -> &[RevocationToken] {
        &self.tokens
    }

    /// Whether `token` is currently listed.
    pub fn contains(&self, token: &RevocationToken) -> bool {
        self.index.contains_key(&token.to_bytes())
    }

    /// Current version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// |URL|.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Retained delta-log length (operator observability).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Order-insensitive fingerprint of `(epoch, version, token set)` —
    /// the convergence witness for delta vs. full-fetch distribution.
    pub fn digest(&self) -> [u8; 32] {
        digest_of(self.epoch, self.version, &self.tokens)
    }
}

/// [`EpochUrlStore::digest`] over a raw list — lets a consumer fingerprint
/// a full fetch (e.g. a signed URL body) without building a store.
pub fn digest_of(epoch: u64, version: u64, tokens: &[RevocationToken]) -> [u8; 32] {
    let mut keys: Vec<Vec<u8>> = tokens.iter().map(RevocationToken::to_bytes).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut h = peace_hash::Sha256::new()
        .chain(b"peace-url-digest-v1")
        .chain(&epoch.to_be_bytes())
        .chain(&version.to_be_bytes())
        .chain(&(keys.len() as u64).to_be_bytes());
    for k in &keys {
        h = h.chain(k);
    }
    h.finalize()
}
