//! `peace-revoke` — the metropolitan-scale revocation subsystem.
//!
//! The paper's verifier-local revocation check (Eq.3) costs O(|URL|)
//! Miller loops per access request; with millions of users and realistic
//! churn the URL dwarfs every other verification cost. This crate stages
//! the check so the expensive sweep is the *last* resort:
//!
//! * [`EpochUrlStore`] — epoch-partitioned, versioned list storage with
//!   delta-compressed diffs ([`UrlDelta`]): consumers fetch O(churn)
//!   bytes instead of O(|URL|), under the same exact version-chaining
//!   discipline the full-list path enforces.
//! * [`TokenPrefilter`] — a seeded Bloom filter over revocation-token
//!   fingerprints with **no false negatives** (a miss proves the signer
//!   is unrevoked); sound in fixed-bases mode, where a signature links to
//!   its token in two Miller loops.
//! * [`SweepCache`] — a bounded `work unit → verdict` cache, wholesale-
//!   invalidated on every URL version bump.
//! * [`RevocationEngine`] — the staged pipeline (cache → prefilter →
//!   shared-Miller sweep) that replaces
//!   [`PreparedGpk::verify_and_check`](peace_groupsig::PreparedGpk)
//!   verdict-for-verdict, plus telemetry-driven retuning of the sweep's
//!   thread fan-out threshold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cache;
mod engine;
mod prefilter;
mod store;

pub use cache::{CacheKey, SweepCache, Verdict};
pub use engine::{EngineConfig, RevocationEngine, FANOUT_SPAWN_OVERHEAD_NS};
pub use prefilter::TokenPrefilter;
pub use store::{
    digest_of, DeltaError, DeltaOutcome, DeltaPlan, EpochUrlStore, UrlDelta, DEFAULT_DELTA_LOG_CAP,
};

#[cfg(test)]
mod tests {
    use super::*;
    use peace_groupsig::{sign, BasesMode, IssuerKey, MemberKey, PreparedGpk, RevocationToken};
    use peace_wire::{Decode, Encode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tokens(n: usize, seed: u64) -> Vec<RevocationToken> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| RevocationToken(peace_curve::G1::random(&mut rng)))
            .collect()
    }

    // ---- store ----

    #[test]
    fn delta_roundtrip_matches_full_install() {
        let toks = tokens(6, 1);
        let mut operator = EpochUrlStore::new(3);
        let mut router = EpochUrlStore::new(3);
        for t in &toks[..4] {
            assert!(operator.record_add(t));
        }
        assert!(!operator.record_add(&toks[0]), "duplicate add is a no-op");
        match operator.delta_since(3, 0) {
            DeltaPlan::Delta(d) => {
                assert_eq!(d.from_version, 0);
                assert_eq!(d.to_version, 4);
                assert_eq!(d.added.len(), 4);
                assert_eq!(router.apply_delta(&d).unwrap(), DeltaOutcome::Applied);
                // Duplicated frame: idempotent.
                assert_eq!(
                    router.apply_delta(&d).unwrap(),
                    DeltaOutcome::AlreadyCurrent
                );
            }
            other => panic!("expected delta, got {other:?}"),
        }
        assert_eq!(router.digest(), operator.digest());
        assert_eq!(operator.delta_since(3, 4), DeltaPlan::UpToDate);
    }

    #[test]
    fn delta_coalesces_add_then_remove() {
        let toks = tokens(3, 2);
        let mut op = EpochUrlStore::new(0);
        op.record_add(&toks[0]);
        op.record_add(&toks[1]);
        op.record_remove(&toks[0]);
        let DeltaPlan::Delta(d) = op.delta_since(0, 0) else {
            panic!("expected delta");
        };
        // toks[0] was revoked and lifted inside the window: cancels out.
        assert_eq!(d.added, vec![toks[1]]);
        assert!(d.removed.is_empty());
        let mut consumer = EpochUrlStore::new(0);
        consumer.apply_delta(&d).unwrap();
        assert_eq!(consumer.digest(), op.digest());
    }

    #[test]
    fn gapped_and_cross_epoch_deltas_refused() {
        let toks = tokens(4, 3);
        let mut op = EpochUrlStore::new(0);
        for t in &toks {
            op.record_add(t);
        }
        let DeltaPlan::Delta(tail) = op.delta_since(0, 2) else {
            panic!("expected delta");
        };
        let mut behind = EpochUrlStore::new(0); // at version 0, delta starts at 2
        assert_eq!(behind.apply_delta(&tail), Err(DeltaError::VersionGap));
        let mut other_epoch = EpochUrlStore::new(1);
        assert_eq!(
            other_epoch.apply_delta(&tail),
            Err(DeltaError::EpochMismatch)
        );
        // Consumer behind the retained log → full fetch.
        let mut tiny = EpochUrlStore::new(0);
        tiny.set_log_cap(1);
        for t in &toks {
            tiny.record_add(t);
        }
        assert_eq!(tiny.delta_since(0, 0), DeltaPlan::NeedFull);
    }

    #[test]
    fn rotation_empties_and_advances() {
        let toks = tokens(2, 4);
        let mut op = EpochUrlStore::new(0);
        for t in &toks {
            op.record_add(t);
        }
        let v = op.version();
        op.rotate_epoch(1);
        assert_eq!(op.epoch(), 1);
        assert!(op.is_empty());
        assert!(op.version() > v, "version stays monotone across rotation");
        // Pre-rotation consumers cannot delta across the boundary.
        assert_eq!(op.delta_since(0, v), DeltaPlan::NeedFull);
    }

    #[test]
    fn url_delta_wire_roundtrip() {
        let toks = tokens(3, 5);
        let d = UrlDelta {
            epoch: 7,
            from_version: 41,
            to_version: 44,
            added: toks[..2].to_vec(),
            removed: toks[2..].to_vec(),
        };
        assert_eq!(UrlDelta::from_wire(&d.to_wire()).unwrap(), d);
    }

    #[test]
    fn digest_is_order_insensitive() {
        let toks = tokens(5, 6);
        let mut rev: Vec<RevocationToken> = toks.clone();
        rev.reverse();
        assert_eq!(digest_of(1, 9, &toks), digest_of(1, 9, &rev));
        assert_ne!(digest_of(1, 9, &toks), digest_of(1, 10, &toks));
        assert_ne!(digest_of(2, 9, &toks), digest_of(1, 9, &toks));
    }

    // ---- prefilter ----

    #[test]
    fn prefilter_basic_membership() {
        let mut pf = TokenPrefilter::new(128, 1e-3, 42);
        let keys: Vec<[u8; 32]> = (0u8..100).map(|i| [i; 32]).collect();
        for k in &keys {
            pf.insert(k);
        }
        for k in &keys {
            assert!(pf.contains(k), "inserted key must always hit");
        }
        assert!(pf.estimated_fp_rate() < 0.01);
        assert!(pf.bit_len() >= 512);
        assert!(pf.hash_count() >= 1);
    }

    #[test]
    fn prefilter_seed_changes_layout() {
        let mut a = TokenPrefilter::new(64, 1e-3, 1);
        let mut b = TokenPrefilter::new(64, 1e-3, 2);
        a.insert(b"the same key");
        b.insert(b"the same key");
        // Different seeds, same guarantees — both must contain the key.
        assert!(a.contains(b"the same key"));
        assert!(b.contains(b"the same key"));
    }

    // ---- cache ----

    #[test]
    fn cache_version_bump_invalidates_everything() {
        let mut c = SweepCache::new(8);
        c.note_version(1);
        c.insert([1u8; 32], 1, None);
        c.insert([2u8; 32], 1, Some(7));
        assert_eq!(c.get(&[1u8; 32], 1), Some(None));
        assert_eq!(c.get(&[2u8; 32], 1), Some(Some(7)));
        c.note_version(2);
        assert!(c.is_empty(), "a version bump clears the whole cache");
        assert_eq!(c.get(&[1u8; 32], 2), None);
        // Stale-version lookups and inserts are ignored.
        c.insert([3u8; 32], 1, None);
        assert_eq!(c.get(&[3u8; 32], 1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn cache_stays_bounded() {
        let cap = 16;
        let mut c = SweepCache::new(cap);
        for i in 0u32..10_000 {
            let mut k = [0u8; 32];
            k[..4].copy_from_slice(&i.to_be_bytes());
            c.insert(k, 0, None);
            assert!(c.len() <= cap, "cache exceeded its bound at insert {i}");
        }
    }

    // ---- engine ----

    struct World {
        prepared: PreparedGpk,
        members: Vec<MemberKey>,
        rng: StdRng,
    }

    fn world(n_members: usize, seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let issuer = IssuerKey::generate(&mut rng);
        let grp = issuer.new_group_secret(&mut rng);
        let members: Vec<MemberKey> = (0..n_members)
            .map(|_| issuer.issue(&grp, &mut rng))
            .collect();
        World {
            prepared: PreparedGpk::new(issuer.public_key()),
            members,
            rng,
        }
    }

    fn engine_cfg(mode: BasesMode, prefilter: bool) -> EngineConfig {
        EngineConfig {
            bases_mode: mode,
            prefilter,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn engine_matches_direct_verify_and_check_per_message() {
        let mut w = world(4, 10);
        let mode = BasesMode::PerMessage;
        let url: Vec<RevocationToken> = vec![
            w.members[1].revocation_token(),
            w.members[3].revocation_token(),
        ];
        let mut eng = RevocationEngine::new(w.prepared.gpk(), engine_cfg(mode, false));
        eng.install_full(0, 2, &url);
        for (i, m) in w.members.iter().enumerate() {
            let msg = format!("access-{i}").into_bytes();
            let sig = sign(w.prepared.gpk(), m, &msg, mode, &mut w.rng);
            let direct = w.prepared.verify_and_check(&msg, &sig, &url, mode).unwrap();
            let staged = eng.verify_and_check(&w.prepared, &msg, &sig).unwrap();
            assert_eq!(staged, direct, "member {i}");
            // Repeat: served from the cache, same verdict.
            let again = eng.verify_and_check(&w.prepared, &msg, &sig).unwrap();
            assert_eq!(again, direct, "cached verdict diverged for member {i}");
        }
        assert!(eng.cache_len() > 0);
    }

    #[test]
    fn engine_matches_direct_verify_and_check_fixed_bases_with_prefilter() {
        let mut w = world(4, 11);
        let mode = BasesMode::FixedBases;
        let url: Vec<RevocationToken> = vec![w.members[0].revocation_token()];
        let mut eng = RevocationEngine::new(w.prepared.gpk(), engine_cfg(mode, true));
        eng.install_full(0, 1, &url);
        assert!(eng.armed());
        for (i, m) in w.members.iter().enumerate() {
            let msg = format!("fb-{i}").into_bytes();
            let sig = sign(w.prepared.gpk(), m, &msg, mode, &mut w.rng);
            let direct = w.prepared.verify_and_check(&msg, &sig, &url, mode).unwrap();
            let staged = eng.verify_and_check(&w.prepared, &msg, &sig).unwrap();
            assert_eq!(staged, direct, "member {i}");
        }
        // Linkable cache: a *different* message from the same revoked key
        // still hits (fingerprint key, not message key).
        let before = eng.cache_len();
        let msg2 = b"fb-0-second-session".to_vec();
        let sig2 = sign(w.prepared.gpk(), &w.members[0], &msg2, mode, &mut w.rng);
        assert_eq!(
            eng.verify_and_check(&w.prepared, &msg2, &sig2).unwrap(),
            Some(0)
        );
        assert_eq!(
            eng.cache_len(),
            before,
            "same-signer traffic reuses its entry"
        );
    }

    #[test]
    fn engine_batch_matches_direct_batch() {
        let mut w = world(5, 12);
        let mode = BasesMode::PerMessage;
        let url: Vec<RevocationToken> = vec![w.members[2].revocation_token()];
        let mut eng = RevocationEngine::new(w.prepared.gpk(), engine_cfg(mode, false));
        eng.install_full(0, 1, &url);
        let msgs: Vec<Vec<u8>> = (0..5).map(|i| format!("burst-{i}").into_bytes()).collect();
        let mut sigs: Vec<_> = w
            .members
            .iter()
            .zip(&msgs)
            .map(|(m, msg)| sign(w.prepared.gpk(), m, msg, mode, &mut w.rng))
            .collect();
        // Corrupt one signature: the batch must classify it Err like the
        // direct path does.
        sigs[4].c = sigs[4].c.add(&peace_field::Fq::ONE);
        let items: Vec<(&[u8], &peace_groupsig::GroupSignature)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        let direct = w.prepared.verify_and_check_batch(&items, &url, mode);
        let staged = eng.verify_and_check_batch(&w.prepared, &items);
        assert_eq!(staged, direct);
        // Second pass: everything valid is now cache-served, verdicts equal.
        let staged2 = eng.verify_and_check_batch(&w.prepared, &items);
        assert_eq!(staged2, direct);
    }

    /// The cache-invalidation regression the ISSUE pins: a signer verified
    /// clean (verdict cached), *then revoked*, must be rejected when the
    /// same work unit is re-presented — the version bump from the delta
    /// must have flushed the stale "unrevoked" entry.
    #[test]
    fn revoked_then_reused_is_rejected_not_cache_served() {
        let mut w = world(2, 13);
        let mode = BasesMode::PerMessage;
        let mut eng = RevocationEngine::new(w.prepared.gpk(), engine_cfg(mode, false));
        eng.install_full(0, 0, &[]);
        let msg = b"session-establishment".to_vec();
        let sig = sign(w.prepared.gpk(), &w.members[0], &msg, mode, &mut w.rng);
        assert_eq!(eng.verify_and_check(&w.prepared, &msg, &sig).unwrap(), None);
        assert_eq!(eng.verify_and_check(&w.prepared, &msg, &sig).unwrap(), None);
        // Operator revokes member 0 and ships the delta.
        let mut op = EpochUrlStore::new(0);
        op.record_add(&w.members[0].revocation_token());
        let DeltaPlan::Delta(d) = op.delta_since(0, 0) else {
            panic!("expected delta");
        };
        assert_eq!(eng.apply_delta(&d).unwrap(), DeltaOutcome::Applied);
        assert_eq!(eng.cache_len(), 0, "version bump must flush the cache");
        // The very same (msg, sig) — a replayed/retried frame — must now
        // be flagged revoked, not served from a stale cache entry.
        assert_eq!(
            eng.verify_and_check(&w.prepared, &msg, &sig).unwrap(),
            Some(0)
        );
    }

    #[test]
    fn engine_autotune_respects_pin_and_data() {
        let w = world(1, 14);
        let mut cfg = engine_cfg(BasesMode::PerMessage, false);
        cfg.spawn_threshold = Some(17);
        let eng = RevocationEngine::new(w.prepared.gpk(), cfg);
        assert_eq!(eng.autotune_spawn_threshold(), 17);
        assert_eq!(peace_groupsig::sweep_spawn_threshold(), 17);
        peace_groupsig::set_sweep_spawn_threshold(peace_groupsig::DEFAULT_SWEEP_SPAWN_THRESHOLD);
    }

    // ---- proptests ----

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The load-bearing guarantee: whatever was inserted is always
            /// found — the prefilter admits **zero false negatives**, so a
            /// miss may definitively skip the revocation sweep.
            #[test]
            fn prefilter_has_no_false_negatives(
                keys in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 1..64),
                    1..128,
                ),
                expected in 1usize..256,
                fp in 1e-4f64..0.3,
                seed in any::<u64>(),
            ) {
                let mut pf = TokenPrefilter::new(expected, fp, seed);
                for k in &keys {
                    pf.insert(k);
                }
                for k in &keys {
                    prop_assert!(pf.contains(k), "false negative for {k:?}");
                }
            }

            /// Delta application converges to the operator state (same
            /// digest) for any add/remove interleaving.
            #[test]
            fn delta_stream_converges(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..40)) {
                let pool = tokens(16, 99);
                let mut operator = EpochUrlStore::new(0);
                let mut consumer = EpochUrlStore::new(0);
                for (pick, add) in ops {
                    let t = &pool[pick as usize % pool.len()];
                    if add {
                        operator.record_add(t);
                    } else {
                        operator.record_remove(t);
                    }
                    // Sync the consumer at every step (worst-case chatty).
                    match operator.delta_since(consumer.epoch(), consumer.version()) {
                        DeltaPlan::UpToDate => {}
                        DeltaPlan::Delta(d) => {
                            consumer.apply_delta(&d).unwrap();
                        }
                        DeltaPlan::NeedFull => {
                            consumer.install_full(
                                operator.epoch(),
                                operator.version(),
                                operator.tokens(),
                            );
                        }
                    }
                }
                prop_assert_eq!(consumer.digest(), operator.digest());
            }
        }
    }
}
