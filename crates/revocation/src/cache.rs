//! Bounded per-router sweep cache: `signature key → verdict` at one URL
//! version.
//!
//! A router under load re-verifies the same bytes more often than the URL
//! changes: retransmitted frames, duplicated M.2s from the fault-prone
//! channel, and (in fixed-bases mode) repeat traffic from the same key
//! share. The cache remembers the revocation verdict each key received
//! *against the current URL version*; any version bump — one more
//! revocation, a lifted one, an epoch rotation — **invalidates the whole
//! cache**, never entry-by-entry (a stale "unrevoked" entry surviving a
//! bump is exactly the revoked-then-reused acceptance bug the regression
//! suite pins).
//!
//! Capacity is enforced with a two-generation rotation (each generation
//! holds at most half the cap; a full young generation demotes the old
//! one): O(1) per operation, strictly bounded memory, recently-used keys
//! survive a rotation.

use std::collections::HashMap;

/// Cache key: a 32-byte digest of whatever identifies the work unit (the
/// engine uses the signature encoding in per-message mode and the linkable
/// `ê(A, û)` fingerprint in fixed-bases mode).
pub type CacheKey = [u8; 32];

/// A verdict: `None` = unrevoked, `Some(i)` = matched URL token `i`.
pub type Verdict = Option<u32>;

/// The bounded sweep cache (see module docs).
#[derive(Clone, Debug)]
pub struct SweepCache {
    cap: usize,
    version: u64,
    young: HashMap<CacheKey, Verdict>,
    old: HashMap<CacheKey, Verdict>,
}

impl SweepCache {
    /// A cache holding at most `cap` entries (0 disables caching).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            version: 0,
            young: HashMap::new(),
            old: HashMap::new(),
        }
    }

    /// Declares the URL version verdicts are now computed against. Any
    /// change — forward on a revocation, *or backward* (a full resync
    /// after operator failover) — clears every entry.
    pub fn note_version(&mut self, version: u64) {
        if version != self.version {
            self.version = version;
            self.young.clear();
            self.old.clear();
        }
    }

    /// The version the cache is currently valid against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Looks up a verdict computed against version `version`; misses when
    /// the cache is pinned to a different version.
    pub fn get(&self, key: &CacheKey, version: u64) -> Option<Verdict> {
        if version != self.version || self.cap == 0 {
            return None;
        }
        self.young.get(key).or_else(|| self.old.get(key)).copied()
    }

    /// Records a verdict computed against version `version` (ignored if
    /// the cache has moved on).
    pub fn insert(&mut self, key: CacheKey, version: u64, verdict: Verdict) {
        if version != self.version || self.cap == 0 {
            return;
        }
        let half = self.cap.div_ceil(2);
        if self.young.len() >= half && !self.young.contains_key(&key) {
            self.old = std::mem::take(&mut self.young);
        }
        self.young.insert(key, verdict);
    }

    /// Drops every entry without moving the version (e.g. the group
    /// public key changed under an unchanged list version).
    pub fn clear(&mut self) {
        self.young.clear();
        self.old.clear();
    }

    /// Live entries across both generations.
    pub fn len(&self) -> usize {
        self.young.len() + self.old.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.young.is_empty() && self.old.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}
