//! Seeded Bloom prefilter over revocation-token fingerprints.
//!
//! The shared-Miller sweep costs one Miller loop per URL token; at
//! |URL| = 10⁵ that is seconds per access request. In
//! [`BasesMode::FixedBases`](peace_groupsig::BasesMode) a signature by a
//! revoked key exposes `D = ê(T₂, û)/ê(T₁, v̂) = ê(A, û)` — two Miller
//! loops regardless of |URL| — so the engine inserts each listed token's
//! fingerprint `SHA-256(ê(Aᵢ, û))` here and tests `SHA-256(D)` per
//! signature. A **miss is definitive**: Bloom filters admit no false
//! negatives over inserted elements (every set bit of an inserted key
//! stays set — bits are never cleared), so a miss proves the signer is
//! not on the URL and the sweep is skipped entirely. A hit is only a
//! suspicion (false-positive rate `(1 − e^{−kn/m})^k`), resolved by an
//! exact map or the sweep.
//!
//! The filter is *seeded*: index derivation is keyed by a caller-chosen
//! seed, so an adversary cannot precompute fingerprints that collide into
//! a deployment's filter and inflate its false-positive rate.

/// Hard floor on filter size; tiny expected counts still get a usable
/// filter instead of a degenerate handful of bits.
const MIN_BITS: usize = 512;

/// Maximum hash functions — beyond ~16 the FP-rate curve is flat and the
/// per-probe cost is pure loss.
const MAX_HASHES: u32 = 16;

/// A seeded Bloom filter over byte-string keys (see module docs).
#[derive(Clone, Debug)]
pub struct TokenPrefilter {
    bits: Vec<u64>,
    m_bits: u64,
    k: u32,
    seed: u64,
    inserted: usize,
}

impl TokenPrefilter {
    /// Sizes the filter for `expected` insertions at `fp_target`
    /// false-positive rate: `m = −n·ln p / (ln 2)²` bits and
    /// `k = (m/n)·ln 2` hashes, both clamped to sane ranges.
    pub fn new(expected: usize, fp_target: f64, seed: u64) -> Self {
        let n = expected.max(1) as f64;
        let p = fp_target.clamp(1e-9, 0.5);
        let ln2 = core::f64::consts::LN_2;
        let m = ((-n * p.ln()) / (ln2 * ln2)).ceil() as usize;
        let m_bits = m.max(MIN_BITS).next_multiple_of(64);
        let k = ((m_bits as f64 / n) * ln2).round() as u32;
        Self {
            bits: vec![0u64; m_bits / 64],
            m_bits: m_bits as u64,
            k: k.clamp(1, MAX_HASHES),
            seed,
            inserted: 0,
        }
    }

    /// The `k` bit indices for `key`, derived by double hashing over a
    /// seeded XOF block: `idx_i = (h₁ + i·h₂) mod m` (Kirsch–Mitzenmacher,
    /// FP-rate-equivalent to k independent hashes).
    fn indexes(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let mut data = Vec::with_capacity(8 + key.len());
        data.extend_from_slice(&self.seed.to_be_bytes());
        data.extend_from_slice(key);
        let block = peace_hash::xof(b"peace-revoke-bloom-v1", &data, 16);
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&block[i * 8..(i + 1) * 8]);
            u64::from_be_bytes(b)
        };
        let (h1, h2) = (word(0), word(1) | 1);
        let m = self.m_bits;
        (0..self.k as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % m)
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: &[u8]) {
        let idx: Vec<u64> = self.indexes(key).collect();
        for i in idx {
            self.bits[(i / 64) as usize] |= 1u64 << (i % 64);
        }
        self.inserted += 1;
    }

    /// Membership test: `false` is definitive ("not inserted"), `true` is
    /// a suspicion.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.indexes(key)
            .all(|i| self.bits[(i / 64) as usize] & (1u64 << (i % 64)) != 0)
    }

    /// Number of insertions so far (counts duplicates).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Filter size in bits.
    pub fn bit_len(&self) -> usize {
        self.m_bits as usize
    }

    /// Hash-function count `k`.
    pub fn hash_count(&self) -> u32 {
        self.k
    }

    /// The seed the filter was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Estimated false-positive rate at the current load:
    /// `(1 − e^{−k·n/m})^k`.
    pub fn estimated_fp_rate(&self) -> f64 {
        let kn_m = self.k as f64 * self.inserted as f64 / self.m_bits as f64;
        (1.0 - (-kn_m).exp()).powi(self.k as i32)
    }
}
