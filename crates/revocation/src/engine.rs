//! The staged revocation engine: cache → prefilter → shared-Miller sweep.
//!
//! One engine lives inside each verifier (mesh router) and owns the three
//! scalability layers over the paper's Eq.3 check:
//!
//! 1. **Sweep cache** ([`SweepCache`]) — a repeat work unit at an
//!    unchanged URL version returns its remembered verdict without any
//!    pairing work. Any version bump clears the cache wholesale.
//! 2. **Bloom prefilter** ([`TokenPrefilter`]) — fixed-bases mode only
//!    (per-message bases make signatures *unlinkable* to tokens without
//!    pairing against each one, which is the paper's privacy point; no
//!    sound sub-O(|URL|) prefilter can exist there). A signature exposes
//!    `D = ê(T₂, û)/ê(T₁, v̂) = ê(A, û)` in two Miller loops; if
//!    `SHA-256(D)` misses the filter the signer is **provably** not on
//!    the URL. Hits resolve through an exact fingerprint map (or the
//!    sweep when the map is disabled to save memory).
//! 3. **Shared-Miller sweep** — the `n + 1` Miller-loop fallback, with
//!    its thread fan-out threshold retunable from the latency histograms
//!    this engine records ([`RevocationEngine::autotune_spawn_threshold`])
//!    instead of a hard-coded constant.
//!
//! The engine's verdicts are byte-for-byte what
//! [`PreparedGpk::verify_and_check`] returns — the layers change the
//! schedule, never the decision (the equivalence tests pin this).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use peace_curve::G2;
use peace_field::Fq;
use peace_groupsig::{
    h0_bases, revocation_sweep, revocation_sweep_grid, set_sweep_spawn_threshold,
    sweep_spawn_threshold, BasesMode, GroupPublicKey, GroupSignature, PreparedGpk, RevocationToken,
    VerifyError,
};
use peace_pairing::{pairing, pairing_ratio};
use peace_telemetry::{Counter, Histogram};

use crate::cache::{CacheKey, SweepCache};
use crate::prefilter::TokenPrefilter;
use crate::store::{DeltaError, DeltaOutcome, EpochUrlStore, UrlDelta};

/// Measured cost of one full scoped thread fan-out (spawn + join across
/// `available_parallelism` workers) on the reference box, in nanoseconds.
/// The autotuner sizes the sweep threshold so threading only engages when
/// the parallel saving clears this with 2x headroom.
pub const FANOUT_SPAWN_OVERHEAD_NS: u64 = 200_000;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Bases mode the verifier runs in. The prefilter only arms in
    /// [`BasesMode::FixedBases`].
    pub bases_mode: BasesMode,
    /// Arm the Bloom prefilter (fixed-bases mode only; ignored in
    /// per-message mode, where it would be unsound).
    pub prefilter: bool,
    /// Target false-positive rate the filter is sized for.
    pub prefilter_fp_target: f64,
    /// Seed for the filter's keyed index derivation (per-deployment, so
    /// adversaries cannot precompute colliding fingerprints).
    pub prefilter_seed: u64,
    /// Keep an exact `fingerprint → index` map so prefilter hits resolve
    /// in O(1) instead of a sweep. Costs 36 bytes per URL token.
    pub exact_suspect_map: bool,
    /// Sweep-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Pin the process-wide sweep fan-out threshold instead of the
    /// measured default / telemetry autotune.
    pub spawn_threshold: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            bases_mode: BasesMode::PerMessage,
            prefilter: false,
            prefilter_fp_target: 1e-3,
            prefilter_seed: 0x9E3C_E17E_5EED,
            exact_suspect_map: true,
            cache_capacity: 4096,
            spawn_threshold: None,
        }
    }
}

/// Telemetry handles resolved once at engine construction (the process
/// registry interns by name, so every engine shares the same series).
struct Metrics {
    cache_hit: Arc<Counter>,
    cache_miss: Arc<Counter>,
    prefilter_reject: Arc<Counter>,
    prefilter_suspect: Arc<Counter>,
    sweeps: Arc<Counter>,
    delta_applied: Arc<Counter>,
    delta_dup: Arc<Counter>,
    full_sync: Arc<Counter>,
    sweep_us: Arc<Histogram>,
    sweep_token_ns: Arc<Histogram>,
}

impl Metrics {
    fn resolve() -> Self {
        let r = peace_telemetry::global();
        Self {
            cache_hit: r.counter("revoke.cache_hit"),
            cache_miss: r.counter("revoke.cache_miss"),
            prefilter_reject: r.counter("revoke.prefilter_reject"),
            prefilter_suspect: r.counter("revoke.prefilter_suspect"),
            sweeps: r.counter("revoke.sweeps"),
            delta_applied: r.counter("revoke.delta_applied"),
            delta_dup: r.counter("revoke.delta_dup"),
            full_sync: r.counter("revoke.full_sync"),
            sweep_us: r.histogram("revoke.sweep_us"),
            sweep_token_ns: r.histogram("revoke.sweep_token_ns"),
        }
    }
}

/// The staged revocation engine (see module docs).
pub struct RevocationEngine {
    cfg: EngineConfig,
    gpk: GroupPublicKey,
    store: EpochUrlStore,
    cache: SweepCache,
    /// `H₀(gpk)` — the system-wide bases; `Some` iff fixed-bases mode.
    fixed_bases: Option<(G2, G2)>,
    prefilter: Option<TokenPrefilter>,
    /// Exact suspect resolution: token fingerprint → URL index.
    exact: HashMap<CacheKey, u32>,
    metrics: Metrics,
}

impl std::fmt::Debug for RevocationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RevocationEngine")
            .field("epoch", &self.store.epoch())
            .field("version", &self.store.version())
            .field("url_len", &self.store.len())
            .field("prefilter", &self.prefilter.is_some())
            .field("cache_len", &self.cache.len())
            .finish()
    }
}

impl RevocationEngine {
    /// Builds an engine for `gpk` with an empty URL at epoch 0.
    pub fn new(gpk: &GroupPublicKey, cfg: EngineConfig) -> Self {
        if let Some(t) = cfg.spawn_threshold {
            set_sweep_spawn_threshold(t);
        }
        let fixed_bases = (cfg.bases_mode == BasesMode::FixedBases)
            .then(|| h0_bases(gpk, &[], &Fq::ZERO, BasesMode::FixedBases));
        Self {
            cfg,
            gpk: *gpk,
            store: EpochUrlStore::new(0),
            cache: SweepCache::new(cfg.cache_capacity),
            fixed_bases,
            prefilter: None,
            exact: HashMap::new(),
            metrics: Metrics::resolve(),
        }
    }

    /// Installs a new group public key (epoch rotation): the fixed bases,
    /// every fingerprint, and the whole cache are derived from `gpk`, so
    /// all of them reset. Follow with [`Self::install_full`] for the new
    /// epoch's (empty) list.
    pub fn install_gpk(&mut self, gpk: &GroupPublicKey) {
        self.gpk = *gpk;
        self.fixed_bases = (self.cfg.bases_mode == BasesMode::FixedBases)
            .then(|| h0_bases(gpk, &[], &Fq::ZERO, BasesMode::FixedBases));
        self.prefilter = None;
        self.exact.clear();
        self.cache.clear();
    }

    /// Replaces the full list (a bulletin fetch landing). Rebuilds the
    /// prefilter (one pairing per token — this is the expensive path the
    /// delta flow exists to avoid) and invalidates the cache.
    pub fn install_full(&mut self, epoch: u64, version: u64, tokens: &[RevocationToken]) {
        self.store.install_full(epoch, version, tokens);
        self.metrics.full_sync.inc();
        self.rebuild_prefilter();
        self.cache.note_version(self.store.version());
    }

    /// Applies a delta-compressed diff. On success, added tokens join the
    /// prefilter incrementally (one pairing each); removals force a filter
    /// rebuild (Bloom bits cannot be cleared). The cache invalidates on
    /// any version advance.
    ///
    /// # Errors
    ///
    /// [`DeltaError`] when the diff does not chain — the caller falls back
    /// to a full fetch; the engine state is unchanged.
    pub fn apply_delta(&mut self, d: &UrlDelta) -> Result<DeltaOutcome, DeltaError> {
        let outcome = self.store.apply_delta(d)?;
        match outcome {
            DeltaOutcome::AlreadyCurrent => self.metrics.delta_dup.inc(),
            DeltaOutcome::Applied => {
                self.metrics.delta_applied.inc();
                if !d.removed.is_empty() {
                    self.rebuild_prefilter();
                } else if self.armed() {
                    // Index of each appended token = position in the store.
                    for t in &d.added {
                        if let Some(i) = self.store.tokens().iter().position(|x| x == t) {
                            self.index_token(t, i as u32);
                        }
                    }
                }
                self.cache.note_version(self.store.version());
            }
        }
        Ok(outcome)
    }

    /// Whether the prefilter stage is armed (configured on *and* sound in
    /// the current bases mode).
    pub fn armed(&self) -> bool {
        self.cfg.prefilter && self.fixed_bases.is_some()
    }

    fn index_token(&mut self, token: &RevocationToken, idx: u32) {
        let Some((u_hat, _)) = &self.fixed_bases else {
            return;
        };
        let fp = peace_hash::sha256(&pairing(&token.0, u_hat).to_bytes());
        if let Some(pf) = &mut self.prefilter {
            pf.insert(&fp);
        }
        if self.cfg.exact_suspect_map {
            self.exact.insert(fp, idx);
        }
    }

    fn rebuild_prefilter(&mut self) {
        self.exact.clear();
        if !self.armed() {
            self.prefilter = None;
            return;
        }
        let expected = (self.store.len() * 2).max(64);
        self.prefilter = Some(TokenPrefilter::new(
            expected,
            self.cfg.prefilter_fp_target,
            self.cfg.prefilter_seed,
        ));
        let tokens: Vec<RevocationToken> = self.store.tokens().to_vec();
        for (i, t) in tokens.iter().enumerate() {
            self.index_token(t, i as u32);
        }
    }

    /// Full verification + staged revocation check — the drop-in
    /// replacement for [`PreparedGpk::verify_and_check`], with identical
    /// verdicts against this engine's list.
    ///
    /// # Errors
    ///
    /// [`VerifyError`] if the Σ-protocol check fails (the revocation
    /// stages never run in that case).
    pub fn verify_and_check(
        &mut self,
        prepared: &PreparedGpk,
        msg: &[u8],
        sig: &GroupSignature,
    ) -> Result<Option<usize>, VerifyError> {
        let (u_hat, v_hat) = prepared.verify_bases(msg, sig, self.cfg.bases_mode)?;
        Ok(self.check_revocation(msg, sig, &u_hat, &v_hat))
    }

    /// Batched verification + staged revocation check — the drop-in
    /// replacement for [`PreparedGpk::verify_and_check_batch`]. Cache and
    /// prefilter stages run per item; every item that still needs a sweep
    /// joins one signature×token grid with a single shared final
    /// exponentiation.
    pub fn verify_and_check_batch(
        &mut self,
        prepared: &PreparedGpk,
        items: &[(&[u8], &GroupSignature)],
    ) -> Vec<Result<Option<usize>, VerifyError>> {
        let bases = prepared.verify_batch_bases(items, self.cfg.bases_mode);
        let mut out: Vec<Result<Option<usize>, VerifyError>> =
            bases.iter().map(|r| r.map(|_| None)).collect();
        if self.store.is_empty() {
            return out;
        }
        let version = self.store.version();
        // Stage 1+2 per item; survivors queue for the shared grid sweep.
        let mut pending: Vec<(usize, CacheKey, G2, G2)> = Vec::new();
        for (i, (r, &(msg, sig))) in bases.iter().zip(items).enumerate() {
            let Ok((u_hat, v_hat)) = r else { continue };
            match self.staged_verdict(msg, sig, version) {
                Staged::Settled(v) => out[i] = Ok(v),
                Staged::NeedsSweep(key) => pending.push((i, key, *u_hat, *v_hat)),
            }
        }
        if !pending.is_empty() {
            let rows: Vec<(&GroupSignature, G2, G2)> = pending
                .iter()
                .map(|&(i, _, u, v)| (items[i].1, u, v))
                .collect();
            let t0 = Instant::now();
            let verdicts = revocation_sweep_grid(&rows, self.store.tokens());
            self.note_sweep(t0, rows.len() * self.store.len());
            for (&(i, key, _, _), v) in pending.iter().zip(&verdicts) {
                self.cache.insert(key, version, v.map(|x| x as u32));
                out[i] = Ok(*v);
            }
        }
        out
    }

    /// The revocation stages alone, for callers that already verified the
    /// signature and hold its H₀ bases (e.g. via
    /// [`PreparedGpk::verify_bases`]).
    pub fn check_revocation(
        &mut self,
        msg: &[u8],
        sig: &GroupSignature,
        u_hat: &G2,
        v_hat: &G2,
    ) -> Option<usize> {
        if self.store.is_empty() {
            return None;
        }
        let version = self.store.version();
        match self.staged_verdict(msg, sig, version) {
            Staged::Settled(v) => v,
            Staged::NeedsSweep(key) => {
                let t0 = Instant::now();
                let verdict = revocation_sweep(sig, self.store.tokens(), u_hat, v_hat);
                self.note_sweep(t0, self.store.len());
                self.cache.insert(key, version, verdict.map(|x| x as u32));
                verdict
            }
        }
    }

    /// Runs the cache and prefilter stages; returns either a settled
    /// verdict or the cache key under which a sweep result should land.
    fn staged_verdict(&mut self, msg: &[u8], sig: &GroupSignature, version: u64) -> Staged {
        // In fixed-bases mode with the prefilter armed, the cache key is
        // the linkable `ê(A, û)` fingerprint: repeat traffic from one key
        // share hits regardless of message. Otherwise it is a digest of
        // (msg, sig) — per-message bases keep signers unlinkable, so only
        // literal retransmissions can hit, which is exactly what the
        // retry-heavy channel produces.
        let (key, d_fp) = match (&self.prefilter, &self.fixed_bases) {
            (Some(_), Some((u_hat, v_hat))) => {
                let d = pairing_ratio(&sig.t2, u_hat, &sig.t1, v_hat);
                let fp = peace_hash::sha256(&d.to_bytes());
                (fp, Some(fp))
            }
            _ => {
                let h = peace_hash::Sha256::new()
                    .chain(b"peace-revoke-cache-v1")
                    .chain(&(msg.len() as u64).to_be_bytes())
                    .chain(msg);
                (h.chain(&sig.to_bytes()).finalize(), None)
            }
        };
        if let Some(v) = self.cache.get(&key, version) {
            self.metrics.cache_hit.inc();
            return Staged::Settled(v.map(|x| x as usize));
        }
        self.metrics.cache_miss.inc();
        if let (Some(fp), Some(pf)) = (d_fp, &self.prefilter) {
            if !pf.contains(&fp) {
                // Definitive: Bloom filters have no false negatives, so no
                // listed token's fingerprint equals this signature's.
                self.metrics.prefilter_reject.inc();
                self.cache.insert(key, version, None);
                return Staged::Settled(None);
            }
            self.metrics.prefilter_suspect.inc();
            if self.cfg.exact_suspect_map {
                let verdict = self.exact.get(&fp).map(|&i| i as usize);
                self.cache.insert(key, version, verdict.map(|x| x as u32));
                return Staged::Settled(verdict);
            }
        }
        Staged::NeedsSweep(key)
    }

    fn note_sweep(&self, t0: Instant, cells: usize) {
        self.metrics.sweeps.inc();
        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.metrics.sweep_us.record(ns / 1_000);
        if cells > 0 {
            self.metrics.sweep_token_ns.record(ns / cells as u64);
        }
    }

    /// Retunes the process-wide sweep fan-out threshold from the measured
    /// per-token sweep cost: threading engages where the parallel saving
    /// clears [`FANOUT_SPAWN_OVERHEAD_NS`] with 2x headroom. Falls back to
    /// the current threshold until enough sweeps have been observed, and
    /// honors a [`EngineConfig::spawn_threshold`] pin. Returns the
    /// threshold now in force.
    pub fn autotune_spawn_threshold(&self) -> usize {
        if let Some(t) = self.cfg.spawn_threshold {
            set_sweep_spawn_threshold(t);
            return sweep_spawn_threshold();
        }
        let snap = self.metrics.sweep_token_ns.snapshot();
        if snap.count < 16 {
            return sweep_spawn_threshold();
        }
        let per_token_ns = snap.mean().max(1);
        let t = ((2 * FANOUT_SPAWN_OVERHEAD_NS) / per_token_ns).clamp(2, 4096) as usize;
        set_sweep_spawn_threshold(t);
        t
    }

    /// Current URL version.
    pub fn url_version(&self) -> u64 {
        self.store.version()
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// |URL| this engine enforces.
    pub fn url_len(&self) -> usize {
        self.store.len()
    }

    /// The enforced token list.
    pub fn tokens(&self) -> &[RevocationToken] {
        self.store.tokens()
    }

    /// Order-insensitive list fingerprint (see
    /// [`EpochUrlStore::digest`]).
    pub fn digest(&self) -> [u8; 32] {
        self.store.digest()
    }

    /// Live sweep-cache entries (observability).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The URL version the sweep cache is valid against.
    pub fn cache_version(&self) -> u64 {
        self.cache.version()
    }

    /// Estimated prefilter false-positive rate, if armed.
    pub fn prefilter_fp_rate(&self) -> Option<f64> {
        self.prefilter
            .as_ref()
            .map(TokenPrefilter::estimated_fp_rate)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }
}

enum Staged {
    Settled(Option<usize>),
    NeedsSweep(CacheKey),
}
