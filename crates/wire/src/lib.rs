//! Deterministic binary wire codec for PEACE messages.
//!
//! Every protocol message and cryptographic object in PEACE has a canonical
//! byte encoding produced by this codec. The format is deliberately simple:
//! big-endian fixed-width integers, `u32`-length-prefixed variable byte
//! strings, and length-prefixed sequences. Determinism matters because
//! encodings are hashed (challenges, MACs) and signed.
//!
//! # Examples
//!
//! ```
//! use peace_wire::{Decode, Encode, Reader, Writer};
//!
//! let mut w = Writer::new();
//! w.put_u64(7);
//! w.put_bytes(b"hello");
//! let buf = w.into_bytes();
//!
//! let mut r = Reader::new(&buf);
//! assert_eq!(r.get_u64()?, 7);
//! assert_eq!(r.get_bytes()?, b"hello");
//! r.finish()?;
//! # Ok::<(), peace_wire::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use core::fmt;

/// Errors produced while decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the expected field.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input or a sanity bound.
    LengthOutOfRange,
    /// A decoded value failed validation (bad tag, off-curve point, …).
    Invalid(&'static str),
    /// Trailing bytes remained after a complete decode.
    TrailingBytes,
}

impl WireError {
    /// Stable machine-readable identifier for this failure class (used as
    /// a metrics key; must never change once released).
    pub fn code(&self) -> &'static str {
        match self {
            WireError::UnexpectedEnd => "unexpected_end",
            WireError::LengthOutOfRange => "length_out_of_range",
            WireError::Invalid(_) => "invalid",
            WireError::TrailingBytes => "trailing_bytes",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::LengthOutOfRange => write!(f, "length prefix out of range"),
            WireError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for decoding.
pub type Result<T> = core::result::Result<T, WireError>;

/// Append-only encoder.
///
/// The writer never panics: a length that does not fit its `u32` prefix
/// *poisons* the writer instead (the offending field and everything after
/// it are discarded). Poisoning is sticky and observable through
/// [`Writer::error`] / [`Writer::try_into_bytes`], so encoders that can
/// legitimately see oversized inputs surface [`WireError::LengthOutOfRange`]
/// rather than producing a corrupt encoding.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
    err: Option<WireError>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            err: None,
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        if self.err.is_none() {
            self.buf.push(v);
        }
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        if self.err.is_none() {
            self.buf.extend_from_slice(&v.to_be_bytes());
        }
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        if self.err.is_none() {
            self.buf.extend_from_slice(&v.to_be_bytes());
        }
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        if self.err.is_none() {
            self.buf.extend_from_slice(&v.to_be_bytes());
        }
    }

    /// Appends a boolean as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a `u32` length prefix for a field of `len` bytes (or `len`
    /// elements). Lengths above `u32::MAX` poison the writer with
    /// [`WireError::LengthOutOfRange`] instead of panicking.
    pub fn put_len(&mut self, len: usize) {
        match u32::try_from(len) {
            Ok(l) => self.put_u32(l),
            Err(_) => self.err = Some(WireError::LengthOutOfRange),
        }
    }

    /// Appends raw bytes with a `u32` length prefix. Oversized inputs
    /// (> 4 GiB) poison the writer; see [`Writer::error`].
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        if self.err.is_none() {
            self.buf.extend_from_slice(v);
        }
    }

    /// Appends raw bytes with no length prefix (fixed-width fields).
    pub fn put_fixed(&mut self, v: &[u8]) {
        if self.err.is_none() {
            self.buf.extend_from_slice(v);
        }
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a sequence: `u32` count then each element's encoding.
    /// Sequences longer than `u32::MAX` poison the writer.
    pub fn put_seq<T: Encode>(&mut self, items: &[T]) {
        self.put_len(items.len());
        if self.err.is_some() {
            return;
        }
        for item in items {
            item.encode(self);
        }
    }

    /// The sticky encoding error, if any write overflowed a length prefix.
    pub fn error(&self) -> Option<WireError> {
        self.err
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding, returning the buffer.
    ///
    /// If the writer was poisoned (see [`Writer::error`]) the returned
    /// buffer is incomplete; use [`Writer::try_into_bytes`] where a caller
    /// must distinguish that case.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Finishes encoding, surfacing any sticky overflow error.
    pub fn try_into_bytes(self) -> Result<Vec<u8>> {
        match self.err {
            Some(e) => Err(e),
            None => Ok(self.buf),
        }
    }

    /// Borrows the encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Checked sequential decoder.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Reads a boolean byte (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool")),
        }
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::LengthOutOfRange);
        }
        self.take(len)
    }

    /// Reads exactly `n` bytes (fixed-width field).
    pub fn get_fixed(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::Invalid("utf-8"))
    }

    /// Reads a sequence of `T`.
    pub fn get_seq<T: Decode>(&mut self) -> Result<Vec<T>> {
        let count = self.get_u32()? as usize;
        // Defensive bound: every element costs ≥ 1 byte.
        if count > self.remaining() {
            return Err(WireError::LengthOutOfRange);
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    /// Asserts all input has been consumed.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Types with a canonical wire encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: encodes into a fresh buffer, surfacing length-prefix
    /// overflow as [`WireError::LengthOutOfRange`] instead of silently
    /// returning a partial encoding.
    fn try_to_wire(&self) -> Result<Vec<u8>> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.try_into_bytes()
    }
}

/// Types decodable from the wire encoding.
pub trait Decode: Sized {
    /// Decodes one value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Convenience: decodes a complete buffer (rejects trailing bytes).
    fn from_wire(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_u64()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(r.get_bytes()?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdeadbeef);
        w.put_u64(u64::MAX);
        w.put_bool(true);
        w.put_bool(false);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn bytes_and_strings() {
        let mut w = Writer::new();
        w.put_bytes(b"");
        w.put_bytes(b"payload");
        w.put_str("héllo");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_bytes().unwrap(), b"");
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = Writer::new();
        w.put_u64(5);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf[..4]);
        assert_eq!(r.get_u64(), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut w = Writer::new();
        w.put_u32(1000); // claims 1000 bytes follow
        w.put_fixed(b"short");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_bytes(), Err(WireError::LengthOutOfRange));
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = Reader::new(&[7]);
        assert_eq!(r.get_bool(), Err(WireError::Invalid("bool")));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let _ = r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes));
    }

    #[test]
    fn sequences() {
        let items: Vec<Vec<u8>> = vec![b"a".to_vec(), b"bc".to_vec(), vec![]];
        let mut w = Writer::new();
        w.put_seq(&items);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let back: Vec<Vec<u8>> = r.get_seq().unwrap();
        assert_eq!(back, items);
        r.finish().unwrap();
    }

    #[test]
    fn seq_count_bound_checked() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX); // absurd count
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let res: Result<Vec<Vec<u8>>> = r.get_seq();
        assert_eq!(res, Err(WireError::LengthOutOfRange));
    }

    #[test]
    fn trait_helpers_roundtrip() {
        let v: Vec<u8> = b"round".to_vec();
        let enc = v.to_wire();
        assert_eq!(Vec::<u8>::from_wire(&enc).unwrap(), v);
        // trailing byte rejected
        let mut enc2 = enc.clone();
        enc2.push(0);
        assert_eq!(Vec::<u8>::from_wire(&enc2), Err(WireError::TrailingBytes));
    }

    #[test]
    fn oversized_length_poisons_writer() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_len(usize::try_from(u32::MAX).unwrap() + 1); // only representable on 64-bit targets
        assert_eq!(w.error(), Some(WireError::LengthOutOfRange));
        // Poisoning is sticky: later writes are discarded, not mis-framed.
        w.put_u64(7);
        w.put_bytes(b"after");
        assert_eq!(w.as_bytes(), &[1]);
        assert_eq!(w.try_into_bytes(), Err(WireError::LengthOutOfRange));
    }

    #[test]
    fn in_range_length_keeps_writer_clean() {
        let mut w = Writer::new();
        w.put_len(3);
        w.put_fixed(b"abc");
        assert_eq!(w.error(), None);
        let buf = w.try_into_bytes().unwrap();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_bytes().unwrap(), b"abc");
    }

    #[test]
    fn try_to_wire_clean_roundtrip() {
        let v: Vec<u8> = b"ok".to_vec();
        assert_eq!(v.try_to_wire().unwrap(), v.to_wire());
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            WireError::UnexpectedEnd,
            WireError::LengthOutOfRange,
            WireError::Invalid("x"),
            WireError::TrailingBytes,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
